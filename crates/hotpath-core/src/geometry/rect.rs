//! Axis-aligned rectangles.
//!
//! Rectangles are the workhorse of the paper: the *tolerance square*
//! (side `2 eps` around a measurement), the *Final Safe Area* (FSA) that
//! closes an SSA, the cells of the coordinator's grid index, and the
//! FSA-overlap regions examined by the SinglePath strategy are all
//! axis-aligned rectangles under the max-distance metric.

use super::point::Point;

/// A non-empty axis-aligned rectangle `[lo.x, hi.x] x [lo.y, hi.y]`.
///
/// Degenerate rectangles (zero width and/or height) are allowed: the SSA
/// starts as the degenerate rectangle at its apex point, and tolerance
/// intervals may collapse to points when uncertainty consumes the whole
/// tolerance budget.
/// `repr(C)` pins the layout to `lo` then `hi` (32 bytes, no padding)
/// for checkpoint memcpys; the corner-order invariant survives a
/// round-trip because serialized bytes come from a valid `Rect`.
#[derive(Clone, Copy, PartialEq, Debug)]
#[repr(C)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    /// Panics if `lo` exceeds `hi` on either axis (use
    /// [`Rect::from_corners`] for unordered input).
    #[inline]
    pub fn new(lo: Point, hi: Point) -> Self {
        assert!(lo.x <= hi.x && lo.y <= hi.y, "rect corners out of order: lo={lo:?} hi={hi:?}");
        Rect { lo, hi }
    }

    /// Creates a rectangle from two arbitrary opposite corners.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect { lo: a.min(&b), hi: a.max(&b) }
    }

    /// The degenerate rectangle containing exactly `p`.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect { lo: p, hi: p }
    }

    /// The tolerance square of the paper: the L-infinity ball of radius
    /// `eps` centered at `p`, i.e. the square of side `2 eps`.
    #[inline]
    pub fn tolerance_square(p: Point, eps: f64) -> Self {
        debug_assert!(eps >= 0.0, "negative tolerance {eps}");
        let d = Point::new(eps, eps);
        Rect { lo: p - d, hi: p + d }
    }

    /// Lower-left corner.
    #[inline]
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    #[inline]
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Width along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area (zero for degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center of mass; the SinglePath strategy uses the centroid of the
    /// hottest overlap region as a generated candidate vertex (Alg. 2
    /// line 33).
    #[inline]
    pub fn centroid(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) * 0.5, (self.lo.y + self.hi.y) * 0.5)
    }

    /// True when the rectangle has zero width and height.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.lo == self.hi
    }

    /// Closed-set containment test.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.lo.x <= p.x && p.x <= self.hi.x && self.lo.y <= p.y && p.y <= self.hi.y
    }

    /// True when `other` lies entirely within `self` (closed sets).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && other.hi.x <= self.hi.x
            && other.hi.y <= self.hi.y
    }

    /// Closed-set intersection test (touching rectangles intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Intersection of two rectangles, or `None` when disjoint.
    ///
    /// This is the core SSA update of RayTrace (Alg. 1 lines 31-34):
    /// `l(te) <- max(l(ti), li)`, `u(te) <- min(u(ti), ui)` component-wise.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let lo = self.lo.max(&other.lo);
        let hi = self.hi.min(&other.hi);
        if lo.x <= hi.x && lo.y <= hi.y {
            Some(Rect { lo, hi })
        } else {
            None
        }
    }

    /// Smallest rectangle covering both inputs (bounding-box union).
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect { lo: self.lo.min(&other.lo), hi: self.hi.max(&other.hi) }
    }

    /// Rectangle grown by `margin` on every side. The DP competitor
    /// expands each candidate segment's MBB by the tolerance value
    /// (Section 6, "The DP Method").
    #[inline]
    pub fn expand(&self, margin: f64) -> Rect {
        debug_assert!(
            margin >= 0.0 || -2.0 * margin <= self.width().min(self.height()),
            "shrinking rect below empty"
        );
        let d = Point::new(margin, margin);
        Rect { lo: self.lo - d, hi: self.hi + d }
    }

    /// The point of `self` closest to `p` under any `Lp` metric
    /// (component-wise clamp).
    #[inline]
    pub fn clamp_point(&self, p: &Point) -> Point {
        Point::new(p.x.clamp(self.lo.x, self.hi.x), p.y.clamp(self.lo.y, self.hi.y))
    }

    /// Minimum L-infinity distance from `p` to the rectangle (zero when
    /// contained).
    #[inline]
    pub fn dist_linf_point(&self, p: &Point) -> f64 {
        self.clamp_point(p).dist_linf(p)
    }

    /// Scales the rectangle about an arbitrary `apex` point by `factor`:
    /// the projection of the SSA pyramid onto another time plane.
    ///
    /// With `factor = (ti - ts) / (te - ts)` this implements Alg. 1
    /// lines 26-27:
    /// `l(ti) = l(ts) + factor * (l(te) - l(ts))` and likewise for `u`.
    /// `factor > 1` extrapolates past the current FSA, which is exactly
    /// what RayTrace needs when probing a later timestamp.
    #[inline]
    pub fn scale_about(&self, apex: Point, factor: f64) -> Rect {
        debug_assert!(factor >= 0.0, "negative pyramid scale {factor}");
        let lo = apex + (self.lo - apex) * factor;
        let hi = apex + (self.hi - apex) * factor;
        // factor >= 0 preserves corner ordering.
        Rect { lo, hi }
    }

    /// Iterator over the four corner points (ll, lr, ur, ul).
    pub fn corners(&self) -> [Point; 4] {
        [self.lo, Point::new(self.hi.x, self.lo.y), self.hi, Point::new(self.lo.x, self.hi.y)]
    }

    /// Perimeter length.
    #[inline]
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect {
        Rect::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn construction_and_accessors() {
        let rect = r(0.0, 1.0, 4.0, 3.0);
        assert_eq!(rect.width(), 4.0);
        assert_eq!(rect.height(), 2.0);
        assert_eq!(rect.area(), 8.0);
        assert_eq!(rect.perimeter(), 12.0);
        assert_eq!(rect.centroid(), Point::new(2.0, 2.0));
        assert!(!rect.is_degenerate());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn new_rejects_unordered_corners() {
        let _ = r(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn from_corners_normalizes() {
        let rect = Rect::from_corners(Point::new(4.0, 0.0), Point::new(1.0, 5.0));
        assert_eq!(rect.lo(), Point::new(1.0, 0.0));
        assert_eq!(rect.hi(), Point::new(4.0, 5.0));
    }

    #[test]
    fn degenerate_point_rect() {
        let p = Point::new(2.0, 3.0);
        let rect = Rect::point(p);
        assert!(rect.is_degenerate());
        assert_eq!(rect.area(), 0.0);
        assert!(rect.contains(&p));
        assert_eq!(rect.centroid(), p);
    }

    #[test]
    fn tolerance_square_has_side_two_eps() {
        let q = Rect::tolerance_square(Point::new(10.0, -5.0), 2.5);
        assert_eq!(q.width(), 5.0);
        assert_eq!(q.height(), 5.0);
        assert_eq!(q.centroid(), Point::new(10.0, -5.0));
        // Every point within L-inf distance eps is inside.
        assert!(q.contains(&Point::new(12.5, -7.5)));
        assert!(!q.contains(&Point::new(12.6, -5.0)));
    }

    #[test]
    fn containment_is_closed() {
        let rect = r(0.0, 0.0, 2.0, 2.0);
        assert!(rect.contains(&Point::new(0.0, 0.0)));
        assert!(rect.contains(&Point::new(2.0, 2.0)));
        assert!(rect.contains(&Point::new(1.0, 2.0)));
        assert!(!rect.contains(&Point::new(2.0001, 1.0)));
    }

    #[test]
    fn rect_containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 8.0, 8.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn intersection_overlapping() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 1.0, 6.0, 3.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r(2.0, 1.0, 4.0, 3.0));
        // Commutes.
        assert_eq!(b.intersection(&a).unwrap(), i);
    }

    #[test]
    fn intersection_touching_is_degenerate_not_none() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(2.0, 0.0, 4.0, 2.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.width(), 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersection_disjoint_is_none() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(3.0, 3.0, 4.0, 4.0);
        assert!(a.intersection(&b).is_none());
        assert!(!a.intersects(&b));
        // Disjoint on y only.
        let c = r(0.0, 5.0, 1.0, 6.0);
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(3.0, -2.0, 4.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -2.0, 4.0, 1.0));
    }

    #[test]
    fn expand_grows_every_side() {
        let a = r(1.0, 1.0, 2.0, 2.0);
        let e = a.expand(0.5);
        assert_eq!(e, r(0.5, 0.5, 2.5, 2.5));
    }

    #[test]
    fn clamp_and_distance() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.clamp_point(&Point::new(5.0, 1.0)), Point::new(2.0, 1.0));
        assert_eq!(a.dist_linf_point(&Point::new(5.0, 1.0)), 3.0);
        assert_eq!(a.dist_linf_point(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.dist_linf_point(&Point::new(-1.0, -2.0)), 2.0);
    }

    #[test]
    fn scale_about_apex_projects_pyramid() {
        // Apex at origin, FSA = [2,4]x[2,4] at te. Halfway (factor 0.5)
        // the projection is [1,2]x[1,2]; extrapolating (factor 2) gives
        // [4,8]x[4,8].
        let fsa = r(2.0, 2.0, 4.0, 4.0);
        let apex = Point::ORIGIN;
        assert_eq!(fsa.scale_about(apex, 0.5), r(1.0, 1.0, 2.0, 2.0));
        assert_eq!(fsa.scale_about(apex, 2.0), r(4.0, 4.0, 8.0, 8.0));
        assert_eq!(fsa.scale_about(apex, 0.0), Rect::point(apex));
        // Identity at factor 1.
        assert_eq!(fsa.scale_about(apex, 1.0), fsa);
    }

    #[test]
    fn scale_about_interior_apex() {
        let fsa = r(-2.0, -2.0, 2.0, 2.0);
        let apex = Point::new(0.0, 0.0);
        assert_eq!(fsa.scale_about(apex, 0.25), r(-0.5, -0.5, 0.5, 0.5));
    }

    #[test]
    fn degenerate_intersection_edge_cases() {
        // Two identical point rects intersect in themselves.
        let p = Rect::point(Point::new(1.0, 1.0));
        assert_eq!(p.intersection(&p), Some(p));
        // Distinct point rects are disjoint.
        let q = Rect::point(Point::new(1.0, 2.0));
        assert!(p.intersection(&q).is_none());
        // A point rect on a rectangle's edge intersects in itself.
        let a = r(0.0, 0.0, 2.0, 2.0);
        let edge = Rect::point(Point::new(2.0, 1.0));
        assert_eq!(a.intersection(&edge), Some(edge));
        assert!(a.contains_rect(&edge));
        // A point rect at a corner likewise.
        let corner = Rect::point(Point::new(2.0, 2.0));
        assert_eq!(a.intersection(&corner), Some(corner));
        // Zero-width (line) rects crossing meet in a point rect.
        let vline = r(1.0, -5.0, 1.0, 5.0);
        let hline = r(-5.0, 0.5, 5.0, 0.5);
        assert_eq!(vline.intersection(&hline), Some(Rect::point(Point::new(1.0, 0.5))));
    }

    #[test]
    fn corner_touching_rects_intersect_in_a_point() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 1.0, 2.0, 2.0);
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert!(i.is_degenerate());
        assert_eq!(i, Rect::point(Point::new(1.0, 1.0)));
    }

    #[test]
    fn containment_edge_cases() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        // Shared edge still counts as containment (closed sets).
        assert!(a.contains_rect(&r(0.0, 0.0, 4.0, 2.0)));
        assert!(a.contains_rect(&r(2.0, 0.0, 4.0, 4.0)));
        // One-axis overflow by any amount breaks it.
        assert!(!a.contains_rect(&r(0.0, 0.0, 4.0 + 1e-12, 2.0)));
        assert!(!a.contains_rect(&r(-1e-12, 0.0, 1.0, 1.0)));
        // Containment implies intersection equals the inner rect.
        let inner = r(1.0, 1.0, 3.0, 4.0);
        assert!(a.contains_rect(&inner));
        assert_eq!(a.intersection(&inner), Some(inner));
        // Degenerate contains only itself.
        let p = Rect::point(Point::new(1.0, 1.0));
        assert!(p.contains_rect(&p));
        assert!(!p.contains_rect(&r(1.0, 1.0, 1.0, 2.0)));
    }

    #[test]
    fn zero_eps_tolerance_square_is_a_point() {
        let c = Point::new(3.0, -1.0);
        let q = Rect::tolerance_square(c, 0.0);
        assert!(q.is_degenerate());
        assert!(q.contains(&c));
        assert!(!q.contains(&Point::new(3.0 + 1e-12, -1.0)));
    }

    #[test]
    fn corners_are_ccw_from_lo() {
        let a = r(0.0, 0.0, 2.0, 1.0);
        let c = a.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(2.0, 0.0));
        assert_eq!(c[2], Point::new(2.0, 1.0));
        assert_eq!(c[3], Point::new(0.0, 1.0));
    }
}
