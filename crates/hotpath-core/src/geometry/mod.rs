//! Geometric primitives: points, rectangles, segments, and timepoints in
//! `xy` / `xyt` space, under the paper's max-distance tolerance metric.

mod point;
mod rect;
mod segment;
mod timepoint;

pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;
pub use timepoint::{TimePoint, Trajectory};
