//! A hierarchical timer wheel, generic over its event type.
//!
//! Extracted from the hotness table (which drives sliding-window expiry
//! through it) so other subsystems with deadline semantics — the
//! session table's heartbeat leases — can reuse the same structure
//! instead of forking it. The wheel fires events in amortized
//! O(expired) per [`TimerWheel::advance_collect`]: events hash into
//! 64-slot levels by the position of the highest bit in which their
//! expiry differs from the wheel clock, occupancy bitmaps locate the
//! next non-empty bucket in a few instructions, and each event cascades
//! toward finer levels at most `LEVELS` times over its whole
//! lifetime. Cost never scales with the pending-set size — only with
//! what actually expires.

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed to cover the full `u64` timestamp range (6 × 11 = 66).
const LEVELS: usize = 11;

/// An event the wheel can schedule: carries its own expiry timestamp
/// and a canonical total order used when callers sort a fired batch
/// (the wheel itself drains in bucket order, not time order).
pub trait WheelEvent: Copy + std::fmt::Debug {
    /// The canonical sort key — must order primarily by expiry so a
    /// sorted batch reproduces deadline order deterministically.
    type Key: Ord + Copy;
    /// The expiry timestamp, as the raw clock value.
    fn expiry_raw(&self) -> u64;
    /// The canonical `(expiry, tie-break)` key.
    fn sort_key(&self) -> Self::Key;
}

/// A hierarchical timer wheel over [`WheelEvent`]s.
///
/// An event with `expiry > clock` lives in bucket `(level, slot)` where
/// `level` is the index of the 6-bit digit holding the highest bit in
/// which `expiry` differs from `clock`, and `slot` is the event's digit
/// at that level. Two invariants hold between operations:
///
/// 1. every bucketed event agrees with `clock` on all digits above its
///    level, and its slot digit is strictly greater than the clock's —
///    so `slot_start` computed under the current clock is exact;
/// 2. per-level occupancy bitmaps mirror bucket non-emptiness, so the
///    earliest pending bucket is found with one `trailing_zeros` per
///    level.
///
/// Events inserted at or before `clock` (late or boundary events) go to
/// a `ready` list and fire on the first `advance_collect(now)` with
/// `now >= expiry`. Draining a bucket re-inserts not-yet-due events
/// under the advanced clock, which lands them on a strictly finer
/// level: each event cascades at most `LEVELS` times over its life,
/// making advance amortized O(expired).
#[derive(Clone, Debug)]
pub struct TimerWheel<E: WheelEvent> {
    /// The wheel's notion of now: the largest `advance_collect` time
    /// seen, or the clock the wheel was restored against.
    clock: u64,
    /// `levels[l][s]`: events whose expiry first differs from `clock`
    /// within bit range `[6l, 6l+6)` and whose level-`l` digit is `s`.
    levels: Vec<[Vec<E>; SLOTS]>,
    /// Bit `s` of `occupied[l]` is set iff `levels[l][s]` is non-empty.
    occupied: [u64; LEVELS],
    /// Events inserted with `expiry <= clock`, awaiting advance.
    ready: Vec<E>,
    /// Total events held (all buckets plus `ready`).
    len: usize,
    /// Reused scratch: the expired batch of the last `advance_collect`.
    expired: Vec<E>,
}

impl<E: WheelEvent> Default for TimerWheel<E> {
    fn default() -> Self {
        TimerWheel::new(0)
    }
}

impl<E: WheelEvent> TimerWheel<E> {
    /// An empty wheel whose notion of now starts at `clock`.
    pub fn new(clock: u64) -> Self {
        TimerWheel {
            clock,
            levels: (0..LEVELS).map(|_| std::array::from_fn(|_| Vec::new())).collect(),
            occupied: [0; LEVELS],
            ready: Vec::new(),
            len: 0,
            expired: Vec::new(),
        }
    }

    /// Number of events held (buckets plus the ready list).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel clock: the largest advance time seen.
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Level of `expiry` relative to `clock`: the index of the 6-bit
    /// digit holding their highest differing bit. Requires
    /// `expiry > clock` (so the xor is non-zero).
    #[inline]
    fn level_for(clock: u64, expiry: u64) -> usize {
        ((63 - (clock ^ expiry).leading_zeros()) / LEVEL_BITS) as usize
    }

    /// The slot digit of `t` at `level`.
    #[inline]
    fn slot_of(level: usize, t: u64) -> u64 {
        (t >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)
    }

    /// First timestamp covered by bucket `(level, slot)` under the
    /// current clock prefix.
    #[inline]
    fn slot_start(&self, level: usize, slot: u64) -> u64 {
        let shift = LEVEL_BITS as u64 * (level as u64 + 1);
        let prefix = if shift >= 64 { 0 } else { (self.clock >> shift) << shift };
        prefix | (slot << (LEVEL_BITS as usize * level))
    }

    /// Schedules an event. Events at or before the wheel clock land in
    /// the ready list and fire on the next advance that reaches them.
    pub fn insert(&mut self, ev: E) {
        let t = ev.expiry_raw();
        if t <= self.clock {
            self.ready.push(ev);
        } else {
            let level = Self::level_for(self.clock, t);
            let slot = Self::slot_of(level, t);
            self.levels[level][slot as usize].push(ev);
            self.occupied[level] |= 1u64 << slot;
        }
        self.len += 1;
    }

    /// Earliest occupied bucket as `(level, slot, start)`, or `None`.
    /// The lowest occupied slot per level is the earliest at that level
    /// (slots are absolute digits, all above the clock's), so this is a
    /// min over at most [`LEVELS`] candidates.
    fn earliest_bucket(&self) -> Option<(usize, u64, u64)> {
        let mut best: Option<(usize, u64, u64)> = None;
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let slot = occ.trailing_zeros() as u64;
            let start = self.slot_start(level, slot);
            if best.is_none_or(|(_, _, b)| start < b) {
                best = Some((level, slot, start));
            }
        }
        best
    }

    /// Advances the wheel to `now`, moving every event with
    /// `expiry <= now` into the internal expired scratch (bucket order,
    /// *not* time order — the caller sorts, see
    /// [`TimerWheel::take_expired`]) and cascading not-yet-due events
    /// toward finer levels.
    pub fn advance_collect(&mut self, now: u64) {
        self.expired.clear();
        // Late events fire as soon as the clock reaches their expiry;
        // `ready` is unordered, so filter in place.
        let mut i = 0;
        while i < self.ready.len() {
            if self.ready[i].expiry_raw() <= now {
                let ev = self.ready.swap_remove(i);
                self.expired.push(ev);
                self.len -= 1;
            } else {
                i += 1;
            }
        }
        while let Some((level, slot, start)) = self.earliest_bucket() {
            if start > now {
                break;
            }
            debug_assert!(start >= self.clock, "wheel clock ran past an occupied bucket");
            self.clock = start;
            let mut bucket = std::mem::take(&mut self.levels[level][slot as usize]);
            self.occupied[level] &= !(1u64 << slot);
            for ev in bucket.drain(..) {
                self.len -= 1;
                if ev.expiry_raw() <= now {
                    self.expired.push(ev);
                } else {
                    // Cascades to a strictly finer level under the
                    // advanced clock (never back into this bucket).
                    self.insert(ev);
                }
            }
            // Hand the drained allocation back to the bucket.
            self.levels[level][slot as usize] = bucket;
        }
        if now > self.clock {
            self.clock = now;
        }
    }

    /// Takes the batch collected by the last
    /// [`TimerWheel::advance_collect`], leaving an empty scratch.
    /// Callers sort by [`WheelEvent::sort_key`], process, and hand the
    /// allocation back with [`TimerWheel::give_expired`].
    pub fn take_expired(&mut self) -> Vec<E> {
        std::mem::take(&mut self.expired)
    }

    /// Returns a drained batch's allocation for reuse.
    pub fn give_expired(&mut self, mut buf: Vec<E>) {
        buf.clear();
        self.expired = buf;
    }

    /// Removes every event failing `keep`; returns how many were
    /// removed. O(occupancy) — used by tombstone compaction only.
    pub fn retain_events(&mut self, mut keep: impl FnMut(&E) -> bool) -> usize {
        let before = self.len;
        self.ready.retain(|e| keep(e));
        let mut kept = self.ready.len();
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let bucket = &mut self.levels[level][slot];
                bucket.retain(|e| keep(e));
                if bucket.is_empty() {
                    self.occupied[level] &= !(1u64 << slot);
                }
                kept += bucket.len();
            }
        }
        self.len = kept;
        before - kept
    }

    /// Every held event, sorted by [`WheelEvent::sort_key`] — the
    /// canonical checkpoint order. Sorting makes the serialized section
    /// a pure function of the event *multiset*, independent of bucket
    /// layout, so `checkpoint(restore(image))` reproduces `image` byte
    /// for byte.
    pub fn sorted_events(&self) -> Vec<E> {
        let mut out = Vec::with_capacity(self.len);
        out.extend_from_slice(&self.ready);
        for level in 0..LEVELS {
            let mut occ = self.occupied[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                out.extend_from_slice(&self.levels[level][slot]);
            }
        }
        out.sort_unstable_by_key(|e| e.sort_key());
        out
    }

    /// Audits the wheel's structural invariants: occupancy bitmaps
    /// mirror bucket non-emptiness, the length ledger balances, and
    /// every bucketed event hashes to the bucket holding it under the
    /// current clock.
    pub fn check(&self) -> Result<(), String> {
        let mut counted = self.ready.len();
        for level in 0..LEVELS {
            for slot in 0..SLOTS {
                let bucket = &self.levels[level][slot];
                let bit = (self.occupied[level] >> slot) & 1 == 1;
                if bucket.is_empty() == bit {
                    return Err(format!(
                        "wheel occupancy bit ({level},{slot}) is {bit} for {} events",
                        bucket.len()
                    ));
                }
                counted += bucket.len();
                for ev in bucket {
                    let t = ev.expiry_raw();
                    if t <= self.clock {
                        return Err(format!(
                            "bucketed event {ev:?} expires at {t}, at or before clock {}",
                            self.clock
                        ));
                    }
                    if Self::level_for(self.clock, t) != level
                        || Self::slot_of(level, t) != slot as u64
                    {
                        return Err(format!(
                            "event {ev:?} (expiry {t}) stranded in bucket ({level},{slot}) \
                             under clock {}",
                            self.clock
                        ));
                    }
                }
            }
        }
        if counted != self.len {
            return Err(format!("wheel ledger says {} events, buckets hold {counted}", self.len));
        }
        Ok(())
    }
}
