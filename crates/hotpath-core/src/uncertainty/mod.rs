//! Uncertainty handling (Section 4.1): Gaussian measurement model,
//! standard-normal numerics, and `(eps, delta)` tolerance intervals.

pub mod normal;
mod tolerance;

pub use tolerance::{
    coverage, half_width_exact, FallbackPolicy, GaussianPoint, ToleranceTable, ToleranceTable2D,
};
