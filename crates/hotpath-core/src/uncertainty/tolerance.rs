//! Tolerance intervals for uncertain measurements (Section 4.1).
//!
//! A 1-D measurement is a Gaussian `X ~ N(x, sigma^2)`. A center `x'` is
//! *close* to the measurement when `Pr(|X - x'| <= eps) >= 1 - delta`
//! (Equation 1). The set of admissible centers is the interval
//! `[x - w, x + w]` whose half-width `w` solves
//! `Phi((x' + eps - x)/sigma) - Phi((x' - eps - x)/sigma) = 1 - delta`
//! (Equation 2). The solver below finds `w` by bisection over the
//! monotone flank of the coverage function; a precomputed lookup table
//! provides the constant-time fast path the paper recommends.

use super::normal::{phi, phi_inv};
use crate::geometry::{Point, Rect};

/// Coverage probability `Pr(X in [c - eps, c + eps])` for
/// `X ~ N(0, sigma^2)` and a center offset `c` from the mean.
///
/// Symmetric in `c`, maximal at `c = 0`, strictly decreasing in `|c|`.
pub fn coverage(c: f64, eps: f64, sigma: f64) -> f64 {
    debug_assert!(eps >= 0.0 && sigma >= 0.0);
    if sigma == 0.0 {
        // Exact measurement: covered iff the center is within eps.
        return if c.abs() <= eps { 1.0 } else { 0.0 };
    }
    phi((c + eps) / sigma) - phi((c - eps) / sigma)
}

/// Exact tolerance-interval half-width for `(eps, delta)` and measurement
/// noise `sigma`; `None` when even the mean itself fails Equation 1
/// (the pitfall discussed at the end of Section 4.1).
///
/// The returned `w` satisfies `coverage(w) = 1 - delta` up to 1e-12 and
/// `coverage(c) >= 1 - delta` for all `|c| <= w`.
pub fn half_width_exact(eps: f64, delta: f64, sigma: f64) -> Option<f64> {
    assert!(eps > 0.0, "eps must be positive");
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta must lie in (0,1)");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let target = 1.0 - delta;
    if sigma == 0.0 {
        return Some(eps);
    }
    if coverage(0.0, eps, sigma) < target {
        return None;
    }
    // coverage(c) decreases for c >= 0 toward 0; bracket the root.
    // At c = eps + sigma * z(1 - delta) the coverage is well below the
    // target, but double defensively.
    let mut hi = eps + sigma * phi_inv(target.max(0.5)).max(1.0);
    while coverage(hi, eps, sigma) >= target {
        hi *= 2.0;
        if hi > 1e12 {
            return Some(hi); // numerically saturated; effectively unbounded
        }
    }
    let mut lo = 0.0_f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if coverage(mid, eps, sigma) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    Some(lo)
}

/// What to do when a measurement is too noisy for `(eps, delta)`
/// (Equation 2 has no solution). Mirrors the two policies suggested in
/// Section 4.1.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FallbackPolicy {
    /// Drop the measurement (the caller may retry or skip).
    Reject,
    /// Retroactively assign a predefined minimal half-width (meters).
    /// Tables cap it at their smallest solvable width, so a hopeless
    /// measurement never receives a wider interval than a barely
    /// solvable one (width stays monotone non-increasing in sigma).
    MinimalArea(f64),
}

impl std::str::FromStr for FallbackPolicy {
    type Err = crate::config::ParseError;

    fn from_str(s: &str) -> Result<FallbackPolicy, Self::Err> {
        const EXPECTED: &str = "reject | minimal | minimal:<width-in-meters>";
        match s {
            "reject" => Ok(FallbackPolicy::Reject),
            "minimal" => Ok(FallbackPolicy::MinimalArea(0.5)),
            _ => {
                let parsed = s
                    .strip_prefix("minimal:")
                    .and_then(|w| w.parse::<f64>().ok())
                    .filter(|w| *w > 0.0 && w.is_finite());
                match parsed {
                    Some(w) => Ok(FallbackPolicy::MinimalArea(w)),
                    None => Err(crate::config::ParseError::new("fallback policy", s, EXPECTED)),
                }
            }
        }
    }
}

impl FallbackPolicy {
    /// Parses a CLI/config tag: `reject`, `minimal`, or `minimal:<w>`
    /// (width in meters; bare `minimal` uses 0.5 m). Thin shim over the
    /// [`FromStr`](std::str::FromStr) impl.
    pub fn parse(s: &str) -> Option<FallbackPolicy> {
        s.parse().ok()
    }
}

/// Precomputed `(eps, delta) -> half-width` lookup table over a sigma
/// grid: the constant-time per-timepoint option of Section 4.1.
///
/// Lookups interpolate between grid nodes and take the *smaller* of the
/// bracketing exact values as a floor, so the returned width never
/// exceeds the admissible one (conservative ⇒ the `1 - delta` guarantee
/// is preserved).
#[derive(Clone, Debug)]
pub struct ToleranceTable {
    eps: f64,
    delta: f64,
    sigma_step: f64,
    /// `widths[i]` = exact half-width at `sigma = i * sigma_step`;
    /// `None` once sigma exceeds the solvable range.
    widths: Vec<Option<f64>>,
    fallback: FallbackPolicy,
    /// Smallest solvable width on the grid (the width at the noisiest
    /// solvable node); fallback widths are capped here so the returned
    /// width is monotone non-increasing in sigma.
    min_solvable: f64,
}

impl ToleranceTable {
    /// Builds a table for tolerance `(eps, delta)` covering
    /// `sigma in [0, sigma_max]` with `steps` grid intervals.
    pub fn build(
        eps: f64,
        delta: f64,
        sigma_max: f64,
        steps: usize,
        fallback: FallbackPolicy,
    ) -> Self {
        assert!(steps >= 1, "need at least one grid interval");
        assert!(sigma_max > 0.0, "sigma_max must be positive");
        if let FallbackPolicy::MinimalArea(w) = fallback {
            assert!(w > 0.0 && w.is_finite(), "MinimalArea width must be positive and finite");
        }
        let sigma_step = sigma_max / steps as f64;
        let widths: Vec<Option<f64>> =
            (0..=steps).map(|i| half_width_exact(eps, delta, i as f64 * sigma_step)).collect();
        // Widths decrease in sigma, so the last solvable node holds the
        // grid minimum (sigma = 0 always solves to exactly eps).
        let min_solvable =
            widths.iter().rev().find_map(|w| *w).expect("sigma = 0 is always solvable");
        ToleranceTable { eps, delta, sigma_step, widths, fallback, min_solvable }
    }

    /// The tolerance radius this table was built for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The failure probability this table was built for.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Constant-time conservative half-width for measurement noise
    /// `sigma`. Applies the fallback policy when unsolvable; `None` means
    /// the measurement must be rejected.
    pub fn half_width(&self, sigma: f64) -> Option<f64> {
        debug_assert!(sigma >= 0.0);
        let pos = sigma / self.sigma_step;
        let i = pos.floor() as usize;
        let solved = if i + 1 < self.widths.len() {
            // Conservative: min of the bracketing nodes (width decreases
            // in sigma, so the right node is the floor; keep min anyway
            // for robustness at grid edges).
            match (self.widths[i], self.widths[i + 1]) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            }
        } else if i < self.widths.len() && (pos - i as f64).abs() < 1e-12 {
            self.widths[i]
        } else {
            None // beyond the tabulated range: treat as unsolvable
        };
        solved.or(match self.fallback {
            FallbackPolicy::Reject => None,
            // Capped at the grid's smallest solvable width: a hopeless
            // measurement must never get a wider interval than a barely
            // solvable one.
            FallbackPolicy::MinimalArea(w) => Some(w.min(self.min_solvable)),
        })
    }
}

/// A 2-D Gaussian measurement: mean position plus independent per-axis
/// standard deviations (`Sigma = diag(sigma_x^2, sigma_y^2)`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GaussianPoint {
    /// Mean (reported) position.
    pub mean: Point,
    /// Standard deviation along x, meters.
    pub sigma_x: f64,
    /// Standard deviation along y, meters.
    pub sigma_y: f64,
}

impl GaussianPoint {
    /// Creates a measurement with isotropic noise.
    pub fn isotropic(mean: Point, sigma: f64) -> Self {
        GaussianPoint { mean, sigma_x: sigma, sigma_y: sigma }
    }

    /// The 2-D tolerance rectangle for `(eps, delta)` using the paper's
    /// per-axis simplification: each axis must succeed with probability
    /// `1 - delta/2`, since `(1 - delta/2)^2 >= 1 - delta`.
    ///
    /// Returns `None` when either axis is unsolvable (after the table's
    /// fallback policy).
    pub fn tolerance_rect(&self, table: &ToleranceTable2D) -> Option<Rect> {
        let wx = table.axis.half_width(self.sigma_x)?;
        let wy = table.axis.half_width(self.sigma_y)?;
        let d = Point::new(wx, wy);
        Some(Rect::new(self.mean - d, self.mean + d))
    }

    /// Exact (bisection) variant of [`Self::tolerance_rect`], bypassing
    /// the lookup table.
    pub fn tolerance_rect_exact(&self, eps: f64, delta: f64) -> Option<Rect> {
        let per_axis_delta = delta / 2.0;
        let wx = half_width_exact(eps, per_axis_delta, self.sigma_x)?;
        let wy = half_width_exact(eps, per_axis_delta, self.sigma_y)?;
        let d = Point::new(wx, wy);
        Some(Rect::new(self.mean - d, self.mean + d))
    }
}

/// 2-D tolerance table: a 1-D table built at `delta/2` applied per axis.
#[derive(Clone, Debug)]
pub struct ToleranceTable2D {
    axis: ToleranceTable,
}

impl ToleranceTable2D {
    /// Builds the per-axis table for a 2-D `(eps, delta)` tolerance.
    pub fn build(
        eps: f64,
        delta: f64,
        sigma_max: f64,
        steps: usize,
        fallback: FallbackPolicy,
    ) -> Self {
        ToleranceTable2D {
            axis: ToleranceTable::build(eps, delta / 2.0, sigma_max, steps, fallback),
        }
    }

    /// The underlying per-axis table.
    pub fn axis(&self) -> &ToleranceTable {
        &self.axis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_peaks_at_mean_and_decreases() {
        let (eps, sigma) = (10.0, 3.0);
        let peak = coverage(0.0, eps, sigma);
        assert!(peak > 0.99);
        assert!(coverage(2.0, eps, sigma) < peak);
        assert!(coverage(5.0, eps, sigma) < coverage(2.0, eps, sigma));
        assert!((coverage(4.0, eps, sigma) - coverage(-4.0, eps, sigma)).abs() < 1e-14);
    }

    #[test]
    fn zero_sigma_reduces_to_crisp_tolerance() {
        assert_eq!(half_width_exact(10.0, 0.05, 0.0), Some(10.0));
        assert_eq!(coverage(9.9, 10.0, 0.0), 1.0);
        assert_eq!(coverage(10.1, 10.0, 0.0), 0.0);
    }

    #[test]
    fn half_width_solves_equation_2() {
        let (eps, delta, sigma) = (10.0, 0.05, 3.0);
        let w = half_width_exact(eps, delta, sigma).unwrap();
        // Root property.
        assert!((coverage(w, eps, sigma) - (1.0 - delta)).abs() < 1e-9);
        // Everything inside keeps the guarantee.
        for i in 0..=10 {
            let c = w * i as f64 / 10.0;
            assert!(coverage(c, eps, sigma) >= 1.0 - delta - 1e-9);
        }
        // Just outside fails it.
        assert!(coverage(w + 1e-6, eps, sigma) < 1.0 - delta);
    }

    #[test]
    fn half_width_shrinks_with_noise_and_grows_with_eps() {
        let w1 = half_width_exact(10.0, 0.05, 1.0).unwrap();
        let w2 = half_width_exact(10.0, 0.05, 3.0).unwrap();
        let w3 = half_width_exact(10.0, 0.05, 4.5).unwrap();
        assert!(w1 > w2 && w2 > w3, "{w1} {w2} {w3}");
        let big_eps = half_width_exact(20.0, 0.05, 3.0).unwrap();
        assert!(big_eps > w2);
        // Looser delta admits wider intervals.
        let loose = half_width_exact(10.0, 0.2, 3.0).unwrap();
        assert!(loose > w2);
    }

    #[test]
    fn unsolvable_when_noise_swamps_tolerance() {
        // With sigma = eps the central coverage is ~68% < 95%.
        assert_eq!(half_width_exact(10.0, 0.05, 10.0), None);
        // Enormous sigma is unsolvable for any reasonable delta.
        assert_eq!(half_width_exact(1.0, 0.01, 100.0), None);
    }

    #[test]
    fn table_is_conservative_wrt_exact() {
        let table = ToleranceTable::build(10.0, 0.05, 6.0, 64, FallbackPolicy::Reject);
        for i in 0..60 {
            let sigma = i as f64 * 0.1 + 0.03;
            match (table.half_width(sigma), half_width_exact(10.0, 0.05, sigma)) {
                (Some(t), Some(e)) => {
                    assert!(t <= e + 1e-9, "table {t} exceeds exact {e} at sigma={sigma}");
                    // And not wildly conservative on a fine grid.
                    assert!(e - t < 0.5, "table too loose at sigma={sigma}: {t} vs {e}");
                }
                (None, _) => {} // conservative rejection is acceptable
                (Some(t), None) => panic!("table solved unsolvable sigma={sigma}: {t}"),
            }
        }
    }

    #[test]
    fn table_fallback_policies() {
        let reject = ToleranceTable::build(10.0, 0.05, 6.0, 16, FallbackPolicy::Reject);
        assert_eq!(reject.half_width(50.0), None);
        let minimal = ToleranceTable::build(10.0, 0.05, 6.0, 16, FallbackPolicy::MinimalArea(0.05));
        assert_eq!(minimal.half_width(50.0), Some(0.05));
        assert_eq!(minimal.eps(), 10.0);
        assert_eq!(minimal.delta(), 0.05);
    }

    #[test]
    fn fallback_width_is_capped_at_the_smallest_solvable_width() {
        // A huge configured width must not hand unsolvable measurements
        // a wider interval than the noisiest solvable sigma gets.
        let table = ToleranceTable::build(10.0, 0.05, 6.0, 64, FallbackPolicy::MinimalArea(100.0));
        let fallback = table.half_width(50.0).unwrap();
        let reject = ToleranceTable::build(10.0, 0.05, 6.0, 64, FallbackPolicy::Reject);
        let edge = (0..640)
            .rev()
            .find_map(|i| reject.half_width(i as f64 * 0.01))
            .expect("some sigma solvable");
        assert!(fallback <= edge, "fallback {fallback} wider than solvable edge {edge}");
        // And the resulting width function is monotone non-increasing.
        let mut prev = f64::INFINITY;
        for i in 0..120 {
            let w = table.half_width(i as f64 * 0.05).unwrap();
            assert!(w <= prev + 1e-9, "width not monotone at sigma={}", i as f64 * 0.05);
            prev = w;
        }
    }

    #[test]
    fn fallback_policy_parses_cli_tags() {
        assert_eq!(FallbackPolicy::parse("reject"), Some(FallbackPolicy::Reject));
        assert_eq!(FallbackPolicy::parse("minimal"), Some(FallbackPolicy::MinimalArea(0.5)));
        assert_eq!(FallbackPolicy::parse("minimal:2.5"), Some(FallbackPolicy::MinimalArea(2.5)));
        assert_eq!(FallbackPolicy::parse("minimal:0"), None);
        assert_eq!(FallbackPolicy::parse("minimal:-1"), None);
        assert_eq!(FallbackPolicy::parse("nope"), None);
    }

    #[test]
    #[should_panic(expected = "MinimalArea width must be positive")]
    fn build_rejects_nonpositive_minimal_width() {
        let _ = ToleranceTable::build(10.0, 0.05, 6.0, 16, FallbackPolicy::MinimalArea(0.0));
    }

    #[test]
    fn gaussian_point_rect_is_centered_and_axis_scaled() {
        let g = GaussianPoint { mean: Point::new(100.0, 200.0), sigma_x: 1.0, sigma_y: 3.0 };
        let r = g.tolerance_rect_exact(10.0, 0.05).unwrap();
        assert_eq!(r.centroid(), Point::new(100.0, 200.0));
        // Noisier axis gets the narrower admissible interval.
        assert!(r.width() > r.height(), "{} vs {}", r.width(), r.height());
        // Both half-widths below eps (noise always shrinks the square).
        assert!(r.width() / 2.0 <= 10.0 && r.height() / 2.0 <= 10.0);
    }

    #[test]
    fn gaussian_rect_table_matches_exact_closely() {
        let table = ToleranceTable2D::build(10.0, 0.05, 6.0, 256, FallbackPolicy::Reject);
        let g = GaussianPoint::isotropic(Point::new(0.0, 0.0), 2.0);
        let via_table = g.tolerance_rect(&table).unwrap();
        let exact = g.tolerance_rect_exact(10.0, 0.05).unwrap();
        assert!(via_table.width() <= exact.width() + 1e-9);
        assert!(exact.width() - via_table.width() < 0.1);
    }

    #[test]
    fn per_axis_delta_split_guarantees_joint_probability() {
        // (1 - delta/2)^2 >= 1 - delta.
        for &delta in &[0.01, 0.05, 0.1, 0.3] {
            let per_axis = 1.0 - delta / 2.0;
            assert!(per_axis * per_axis >= 1.0 - delta);
        }
    }

    #[test]
    fn isotropic_constructor() {
        let g = GaussianPoint::isotropic(Point::new(1.0, 2.0), 0.7);
        assert_eq!(g.sigma_x, 0.7);
        assert_eq!(g.sigma_y, 0.7);
    }
}
