//! Standard-normal numerics implemented from scratch.
//!
//! The tolerance-interval machinery of Section 4.1 needs the standard
//! normal CDF `Phi(z) = (1 + erf(z / sqrt(2))) / 2` and its inverse. The
//! paper assumes printed lookup tables; we implement `erf` directly —
//! Taylor series near zero and a Lentz continued fraction for the
//! complementary function in the tails — giving ~1e-14 accuracy, far
//! beyond what the `(eps, delta)` model requires.

/// `2 / sqrt(pi)`, the series prefactor of `erf`.
const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
/// `sqrt(2)`.
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// The error function `erf(x) = 2/sqrt(pi) * integral_0^x e^(-t^2) dt`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    if x >= 6.0 {
        // erfc(6) ~ 2e-17: below f64 resolution of 1.
        return 1.0;
    }
    if x <= 2.5 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`, accurate in
/// the far tail where `1 - erf(x)` would cancel catastrophically.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x <= 2.5 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series `erf(x) = 2/sqrt(pi) sum (-1)^n x^(2n+1) / (n!(2n+1))`,
/// converging fast for `|x| <= 2.5`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^(2n+1) / n!
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-17 * sum.abs() {
            break;
        }
    }
    TWO_OVER_SQRT_PI * sum
}

/// Continued-fraction expansion of `erfc` (Lentz's algorithm), valid for
/// large positive `x`:
/// `erfc(x) = e^(-x^2)/sqrt(pi) * 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...))))`.
fn erfc_cf(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut f = x + TINY;
    let mut c = f;
    let mut d = 0.0;
    for n in 1..300 {
        let a = n as f64 / 2.0;
        // b terms alternate x (odd steps contribute a/x pattern).
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / (f * std::f64::consts::PI.sqrt())
}

/// Standard normal CDF `Phi(z)`.
#[inline]
pub fn phi(z: f64) -> f64 {
    0.5 * erfc(-z / SQRT_2)
}

/// Standard normal pdf.
#[inline]
pub fn pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Probability that a standard normal lies in `[a, b]`.
#[inline]
pub fn prob_in(a: f64, b: f64) -> f64 {
    debug_assert!(a <= b);
    (phi(b) - phi(a)).max(0.0)
}

/// Inverse standard-normal CDF (probit), solved by bisection on the
/// monotone `phi`. Accurate to ~1e-12; only used off the hot path (table
/// construction, tests).
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "phi_inv domain is (0, 1), got {p}");
    let (mut lo, mut hi) = (-40.0_f64, 40.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if phi(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-13 {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from Abramowitz & Stegun Table 7.1 and standard
    /// normal tables.
    #[test]
    fn erf_reference_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (1.5, 0.966_105_146_5),
            (2.0, 0.995_322_265_0),
            (3.0, 0.999_977_909_5),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-9, "erf({x}) = {} want {want}", erf(x));
        }
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.7, 1.3, 2.9, 4.0] {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.209e-5, erfc(4) = 1.542e-8, erfc(5) = 1.537e-12.
        assert!((erfc(3.0) - 2.209_049_699_858_544e-5).abs() < 1e-13);
        assert!((erfc(4.0) - 1.541_725_790_028_002e-8).abs() < 1e-16);
        assert!((erfc(5.0) - 1.537_459_794_428_035e-12).abs() < 1e-19);
    }

    #[test]
    fn erf_erfc_complementarity() {
        for &x in &[-3.0, -1.0, 0.0, 0.3, 1.7, 2.5, 3.5] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x={x}");
        }
    }

    #[test]
    fn phi_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841_344_746_1),
            (1.96, 0.975_002_105_0),
            (2.576, 0.995_002_467_7),
            (-1.0, 0.158_655_253_9),
        ];
        for (z, want) in cases {
            assert!((phi(z) - want).abs() < 1e-8, "phi({z}) = {} want {want}", phi(z));
        }
    }

    #[test]
    fn phi_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in -400..=400 {
            let z = i as f64 / 100.0;
            let p = phi(z);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev, "phi not monotone at z={z}");
            prev = p;
        }
    }

    #[test]
    fn prob_in_central_intervals() {
        // 68-95-99.7 rule.
        assert!((prob_in(-1.0, 1.0) - 0.682_689_492_1).abs() < 1e-8);
        assert!((prob_in(-2.0, 2.0) - 0.954_499_736_1).abs() < 1e-8);
        assert!((prob_in(-3.0, 3.0) - 0.997_300_203_9).abs() < 1e-8);
    }

    #[test]
    fn phi_inv_round_trips() {
        for &p in &[0.001, 0.025, 0.5, 0.841_344_746_1, 0.975, 0.999] {
            let z = phi_inv(p);
            assert!((phi(z) - p).abs() < 1e-10, "round trip failed at p={p}");
        }
        assert!((phi_inv(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!(phi_inv(0.5).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn phi_inv_rejects_boundary() {
        let _ = phi_inv(1.0);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
        assert!((pdf(1.5) - pdf(-1.5)).abs() < 1e-15);
    }
}
