//! A small, fast, non-cryptographic hasher for integer-keyed tables.
//!
//! The coordinator keeps several hash tables keyed by dense integer ids
//! (path ids, grid cell keys, quantized vertices). SipHash — the standard
//! library default — is needlessly slow for such keys, so we hand-roll
//! the well-known Fx multiply-rotate hash used by rustc. HashDoS is not a
//! concern: all keys are generated internally by the coordinator.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (64-bit Fx variant).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// The golden-ratio-derived odd multiplier used by Fx hashing.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hash = |k: u64| {
            let mut h = FxHasher::default();
            h.write_u64(k);
            h.finish()
        };
        // Sequential ids must not collide (they are our densest keys).
        let hashes: FxHashSet<u64> = (0..10_000u64).map(hash).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_padded_tail() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        // Different tails hash differently.
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_work_as_drop_ins() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<(i64, i64)> = FxHashSet::default();
        s.insert((3, -4));
        assert!(s.contains(&(3, -4)));
        assert!(!s.contains(&(4, -3)));
    }
}
