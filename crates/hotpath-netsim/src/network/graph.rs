//! The road-network graph.
//!
//! The paper's evaluation (Section 6.1) uses a simplified graph of the
//! greater-Athens road network: 1125 nodes (major crossroads) connected
//! by 1831 straight links over 250 km², with links ranked into four
//! weight classes — motorways, highways, primary and secondary roads —
//! reflecting their significance in vehicle circulation.

use hotpath_core::geometry::{Point, Rect};

/// Node (crossroad) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Link (road segment) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// The four road classes of the evaluation network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RoadClass {
    /// Ring/backbone roads with the heaviest traffic share.
    Motorway,
    /// Major arterials.
    Highway,
    /// Distributor roads.
    Primary,
    /// Local streets.
    Secondary,
}

impl RoadClass {
    /// The link weight used by the weighted random walk: the probability
    /// of following a link is its weight over the sum of weights at the
    /// node, so heavier classes capture proportionally more traffic.
    pub fn weight(self) -> f64 {
        match self {
            RoadClass::Motorway => 16.0,
            RoadClass::Highway => 8.0,
            RoadClass::Primary => 3.0,
            RoadClass::Secondary => 1.0,
        }
    }

    /// All classes, heaviest first.
    pub const ALL: [RoadClass; 4] =
        [RoadClass::Motorway, RoadClass::Highway, RoadClass::Primary, RoadClass::Secondary];
}

/// A crossroad.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Identifier (dense, equals the index).
    pub id: NodeId,
    /// Position in meters.
    pub pos: Point,
}

/// A straight, bidirectionally traversable road link.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// Identifier (dense, equals the index).
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Road class (determines the walk weight).
    pub class: RoadClass,
}

/// The road network: nodes, links, and per-node incidence lists.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    links: Vec<Link>,
    incident: Vec<Vec<LinkId>>,
}

impl RoadNetwork {
    /// Assembles a network from parts, building incidence lists.
    ///
    /// # Panics
    /// Panics when ids are not dense/in-range or a link is a self-loop.
    pub fn new(nodes: Vec<Node>, links: Vec<Link>) -> Self {
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id.0 as usize, i, "node ids must be dense");
        }
        let mut incident = vec![Vec::new(); nodes.len()];
        for (i, l) in links.iter().enumerate() {
            assert_eq!(l.id.0 as usize, i, "link ids must be dense");
            assert_ne!(l.a, l.b, "self-loop link {i}");
            assert!((l.a.0 as usize) < nodes.len(), "link endpoint out of range");
            assert!((l.b.0 as usize) < nodes.len(), "link endpoint out of range");
            incident[l.a.0 as usize].push(l.id);
            incident[l.b.0 as usize].push(l.id);
        }
        RoadNetwork { nodes, links, incident }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Links incident to `node`.
    pub fn incident(&self, node: NodeId) -> &[LinkId] {
        &self.incident[node.0 as usize]
    }

    /// The endpoint of `link` that is not `from`.
    pub fn other_end(&self, link: LinkId, from: NodeId) -> NodeId {
        let l = self.link(link);
        if l.a == from {
            l.b
        } else {
            debug_assert_eq!(l.b, from, "node not on link");
            l.a
        }
    }

    /// Euclidean length of a link in meters.
    pub fn link_length(&self, link: LinkId) -> f64 {
        let l = self.link(link);
        self.node(l.a).pos.dist_l2(&self.node(l.b).pos)
    }

    /// Bounding box of all node positions.
    pub fn bounds(&self) -> Rect {
        let mut lo = self.nodes[0].pos;
        let mut hi = self.nodes[0].pos;
        for n in &self.nodes {
            lo = lo.min(&n.pos);
            hi = hi.max(&n.pos);
        }
        Rect::new(lo, hi)
    }

    /// Per-class link counts, in [`RoadClass::ALL`] order.
    pub fn class_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for l in &self.links {
            let idx = RoadClass::ALL.iter().position(|&c| c == l.class).expect("known class");
            h[idx] += 1;
        }
        h
    }

    /// True when every node can reach every other (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::from([NodeId(0)]);
        seen[0] = true;
        let mut visited = 1;
        while let Some(n) = queue.pop_front() {
            for &l in self.incident(n) {
                let m = self.other_end(l, n);
                if !seen[m.0 as usize] {
                    seen[m.0 as usize] = true;
                    visited += 1;
                    queue.push_back(m);
                }
            }
        }
        visited == self.nodes.len()
    }

    /// Total road length in meters.
    pub fn total_length(&self) -> f64 {
        (0..self.links.len()).map(|i| self.link_length(LinkId(i as u32))).sum()
    }
}

/// A set of closed (impassable) links — road works, accidents, or the
/// authorities sealing an area mid-evacuation. Walkers already on a
/// closed link finish it (they are physically there) but never choose a
/// closed link at a crossroad while an open alternative exists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClosureSet {
    closed: Vec<bool>,
}

impl ClosureSet {
    /// An empty closure set sized for `net` (everything open).
    pub fn none(net: &RoadNetwork) -> Self {
        ClosureSet { closed: vec![false; net.link_count()] }
    }

    /// Closes a link (idempotent).
    pub fn close(&mut self, link: LinkId) {
        self.closed[link.0 as usize] = true;
    }

    /// Reopens a link (idempotent).
    pub fn open(&mut self, link: LinkId) {
        self.closed[link.0 as usize] = false;
    }

    /// True when `link` is closed.
    pub fn is_closed(&self, link: LinkId) -> bool {
        self.closed.get(link.0 as usize).copied().unwrap_or(false)
    }

    /// Number of closed links.
    pub fn closed_count(&self) -> usize {
        self.closed.iter().filter(|&&c| c).count()
    }

    /// Iterates over the closed link ids.
    pub fn iter_closed(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.closed.iter().enumerate().filter_map(|(i, &c)| c.then_some(LinkId(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2x2 grid: 4 nodes, 4 links (a square).
    fn square() -> RoadNetwork {
        let nodes = vec![
            Node { id: NodeId(0), pos: Point::new(0.0, 0.0) },
            Node { id: NodeId(1), pos: Point::new(100.0, 0.0) },
            Node { id: NodeId(2), pos: Point::new(100.0, 100.0) },
            Node { id: NodeId(3), pos: Point::new(0.0, 100.0) },
        ];
        let links = vec![
            Link { id: LinkId(0), a: NodeId(0), b: NodeId(1), class: RoadClass::Motorway },
            Link { id: LinkId(1), a: NodeId(1), b: NodeId(2), class: RoadClass::Highway },
            Link { id: LinkId(2), a: NodeId(2), b: NodeId(3), class: RoadClass::Primary },
            Link { id: LinkId(3), a: NodeId(3), b: NodeId(0), class: RoadClass::Secondary },
        ];
        RoadNetwork::new(nodes, links)
    }

    #[test]
    fn incidence_and_traversal() {
        let net = square();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.link_count(), 4);
        assert_eq!(net.incident(NodeId(0)), &[LinkId(0), LinkId(3)]);
        assert_eq!(net.other_end(LinkId(0), NodeId(0)), NodeId(1));
        assert_eq!(net.other_end(LinkId(0), NodeId(1)), NodeId(0));
        assert_eq!(net.link_length(LinkId(1)), 100.0);
        assert_eq!(net.total_length(), 400.0);
    }

    #[test]
    fn bounds_and_histogram() {
        let net = square();
        let b = net.bounds();
        assert_eq!(b.lo(), Point::new(0.0, 0.0));
        assert_eq!(b.hi(), Point::new(100.0, 100.0));
        assert_eq!(net.class_histogram(), [1, 1, 1, 1]);
    }

    #[test]
    fn connectivity_detection() {
        let net = square();
        assert!(net.is_connected());
        // Two disconnected nodes.
        let disconnected = RoadNetwork::new(
            vec![
                Node { id: NodeId(0), pos: Point::new(0.0, 0.0) },
                Node { id: NodeId(1), pos: Point::new(1.0, 0.0) },
                Node { id: NodeId(2), pos: Point::new(2.0, 0.0) },
            ],
            vec![Link { id: LinkId(0), a: NodeId(0), b: NodeId(1), class: RoadClass::Primary }],
        );
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn class_weights_are_strictly_decreasing() {
        let w: Vec<f64> = RoadClass::ALL.iter().map(|c| c.weight()).collect();
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let _ = RoadNetwork::new(
            vec![Node { id: NodeId(0), pos: Point::ORIGIN }],
            vec![Link { id: LinkId(0), a: NodeId(0), b: NodeId(0), class: RoadClass::Primary }],
        );
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_sparse_node_ids() {
        let _ = RoadNetwork::new(vec![Node { id: NodeId(5), pos: Point::ORIGIN }], vec![]);
    }

    #[test]
    fn closure_set_tracks_links() {
        let net = square();
        let mut closed = ClosureSet::none(&net);
        assert_eq!(closed.closed_count(), 0);
        assert!(!closed.is_closed(LinkId(2)));
        closed.close(LinkId(2));
        closed.close(LinkId(2)); // idempotent
        assert!(closed.is_closed(LinkId(2)));
        assert_eq!(closed.closed_count(), 1);
        assert_eq!(closed.iter_closed().collect::<Vec<_>>(), vec![LinkId(2)]);
        closed.open(LinkId(2));
        assert_eq!(closed.closed_count(), 0);
    }
}
