//! Road-network substrate: graph model, synthetic Athens-like
//! generator, and text serialization.

pub mod generator;
mod graph;
pub mod io;

pub use generator::{generate, NetworkParams};
pub use graph::{ClosureSet, Link, LinkId, Node, NodeId, RoadClass, RoadNetwork};
