//! Synthetic "Athens-like" road-network generator.
//!
//! The paper's data generator ran on the real greater-Athens graph
//! (1125 nodes, 1831 links, 250 km², four road classes). That dataset is
//! not available, so we synthesize a network with the same node/link
//! counts, area, and class structure: a jittered grid of crossroads with
//! motorway/highway arterial corridors and primary/secondary fill — the
//! statistical shape (a few heavy corridors capturing most traffic) is
//! what the hot-path experiments actually depend on. See DESIGN.md for
//! the substitution rationale.

use super::graph::{Link, LinkId, Node, NodeId, RoadClass, RoadNetwork};
use hotpath_core::geometry::Point;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generator parameters. Defaults reproduce the evaluation network.
#[derive(Clone, Copy, Debug)]
pub struct NetworkParams {
    /// Number of crossroads.
    pub nodes: usize,
    /// Number of links; must satisfy `nodes - 1 <= links <= grid capacity`.
    pub links: usize,
    /// Side of the square coverage area in meters.
    pub area_side: f64,
    /// RNG seed (the network is fully deterministic given the seed).
    pub seed: u64,
    /// Radial density exponent `gamma >= 1`: node positions are pulled
    /// toward the center by `(r/R)^(gamma-1)`, making central links
    /// short (dense downtown) and peripheral links long (suburbs), as in
    /// the real Athens graph. `1.0` keeps the uniform grid.
    pub central_compression: f64,
}

impl NetworkParams {
    /// The evaluation network of Section 6.1: 1125 nodes, 1831 links,
    /// 250 km² (side ≈ 15.81 km), densified toward the center.
    pub fn athens() -> Self {
        NetworkParams {
            nodes: 1125,
            links: 1831,
            area_side: 15_811.0,
            seed: 2008,
            central_compression: 2.0,
        }
    }

    /// A small network for fast tests (keeps the same structure).
    pub fn tiny(seed: u64) -> Self {
        NetworkParams { nodes: 100, links: 160, area_side: 2_000.0, seed, central_compression: 1.5 }
    }
}

/// Generates the synthetic road network.
///
/// Construction:
/// 1. lay out `nodes` crossroads on a jittered near-square grid;
/// 2. collect candidate links between grid neighbors;
/// 3. keep a random spanning tree (connectivity), then add random
///    candidates until exactly `links` links exist;
/// 4. classify links: a handful of full rows/columns become arterial
///    motorway/highway corridors, every third row/column is primary,
///    the rest secondary.
pub fn generate(params: NetworkParams) -> RoadNetwork {
    assert!(params.nodes >= 4, "need at least 4 nodes");
    assert!(
        params.links >= params.nodes - 1,
        "links {} cannot connect {} nodes",
        params.links,
        params.nodes
    );
    let mut rng = SmallRng::seed_from_u64(params.seed);

    // --- 1. jittered grid layout ------------------------------------
    let rows = (params.nodes as f64).sqrt().floor() as usize;
    let cols = params.nodes.div_ceil(rows);
    let sx = params.area_side / cols as f64;
    let sy = params.area_side / rows as f64;
    let jitter = 0.3;
    let mut nodes = Vec::with_capacity(params.nodes);
    let mut grid_pos = Vec::with_capacity(params.nodes); // (col, row) per node
    for i in 0..params.nodes {
        let col = i % cols;
        let row = i / cols;
        let jx = rng.gen_range(-jitter..jitter) * sx;
        let jy = rng.gen_range(-jitter..jitter) * sy;
        nodes.push(Node {
            id: NodeId(i as u32),
            pos: Point::new((col as f64 + 0.5) * sx + jx, (row as f64 + 0.5) * sy + jy),
        });
        grid_pos.push((col, row));
    }
    // Radial densification: pull positions toward the center so that
    // downtown links are short and suburban links long.
    if params.central_compression > 1.0 {
        let c = Point::new(params.area_side * 0.5, params.area_side * 0.5);
        // Normalizing radius slightly past the corner distance keeps the
        // scale factor <= 1 everywhere (nodes only move inward).
        let r_max = params.area_side * 0.75;
        let gamma = params.central_compression;
        for n in &mut nodes {
            let d = n.pos - c;
            let r = d.norm();
            if r > 1e-9 {
                let factor = (r / r_max).powf(gamma - 1.0).min(1.0);
                n.pos = c + d * factor;
            }
        }
    }
    let node_at = |col: usize, row: usize| -> Option<usize> {
        let idx = row * cols + col;
        (col < cols && idx < params.nodes).then_some(idx)
    };

    // --- 2. candidate links (grid neighbors) ------------------------
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for (i, &(col, row)) in grid_pos.iter().enumerate() {
        if col + 1 < cols {
            if let Some(j) = node_at(col + 1, row) {
                candidates.push((i, j));
            }
        }
        if let Some(j) = node_at(col, row + 1) {
            candidates.push((i, j));
        }
    }
    assert!(
        candidates.len() >= params.links,
        "grid capacity {} below requested links {}",
        candidates.len(),
        params.links
    );

    // --- 3. spanning tree + random fill ------------------------------
    let mut shuffled = candidates.clone();
    shuffled.shuffle(&mut rng);
    let mut dsu = DisjointSet::new(params.nodes);
    let mut chosen: Vec<(usize, usize)> = Vec::with_capacity(params.links);
    let mut leftovers: Vec<(usize, usize)> = Vec::new();
    for (a, b) in shuffled {
        if dsu.union(a, b) {
            chosen.push((a, b));
        } else {
            leftovers.push((a, b));
        }
    }
    assert_eq!(chosen.len(), params.nodes - 1, "grid must be connected");
    leftovers.shuffle(&mut rng);
    while chosen.len() < params.links {
        let extra = leftovers.pop().expect("capacity checked above");
        chosen.push(extra);
    }
    // Deterministic link order regardless of set construction order.
    chosen.sort_unstable();

    // --- 4. classification -------------------------------------------
    // Arterial corridors: 3 motorway columns, 3 highway rows, evenly
    // spaced; every 3rd remaining row/col is primary.
    let m_cols: Vec<usize> = (1..=3).map(|k| k * cols / 4).collect();
    let h_rows: Vec<usize> = (1..=3).map(|k| k * rows / 4).collect();
    let classify = |a: usize, b: usize, rng: &mut SmallRng| -> RoadClass {
        let (ca, ra) = grid_pos[a];
        let (cb, rb) = grid_pos[b];
        if ca == cb && m_cols.contains(&ca) {
            return RoadClass::Motorway; // vertical link on a motorway column
        }
        if ra == rb && h_rows.contains(&ra) {
            return RoadClass::Highway; // horizontal link on a highway row
        }
        if (ca == cb && ca % 3 == 0) || (ra == rb && ra % 3 == 0) {
            return RoadClass::Primary;
        }
        // Sprinkle a few extra primaries for texture.
        if rng.gen_bool(0.08) {
            RoadClass::Primary
        } else {
            RoadClass::Secondary
        }
    };

    let links: Vec<Link> = chosen
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| Link {
            id: LinkId(i as u32),
            a: NodeId(a as u32),
            b: NodeId(b as u32),
            class: classify(a, b, &mut rng),
        })
        .collect();

    RoadNetwork::new(nodes, links)
}

/// Union-find for spanning-tree construction.
struct DisjointSet {
    parent: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet { parent: (0..n).collect() }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets; returns true when they were distinct.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn athens_has_paper_counts() {
        let net = generate(NetworkParams::athens());
        assert_eq!(net.node_count(), 1125);
        assert_eq!(net.link_count(), 1831);
        assert!(net.is_connected());
        // Area: all nodes within the declared square (plus jitter slack).
        let b = net.bounds();
        assert!(b.hi().x <= 15_811.0 * 1.05);
        assert!(b.hi().y <= 15_811.0 * 1.05);
        assert!(b.lo().x >= -15_811.0 * 0.05);
    }

    #[test]
    fn class_mix_is_skewed_toward_secondary() {
        let net = generate(NetworkParams::athens());
        let [m, h, p, s] = net.class_histogram();
        assert!(m > 0, "no motorways");
        assert!(h > 0, "no highways");
        assert!(p > 0, "no primaries");
        assert!(s > m + h, "secondary roads must dominate: {m} {h} {p} {s}");
        assert_eq!(m + h + p + s, 1831);
        // Arterials are a small minority, as in a real network.
        assert!((m + h) as f64 / 1831.0 < 0.25);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(NetworkParams::athens());
        let b = generate(NetworkParams::athens());
        assert_eq!(a.node_count(), b.node_count());
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(na.pos, nb.pos);
        }
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!((la.a, la.b, la.class), (lb.a, lb.b, lb.class));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(NetworkParams { seed: 1, ..NetworkParams::athens() });
        let b = generate(NetworkParams { seed: 2, ..NetworkParams::athens() });
        let same = a.nodes().iter().zip(b.nodes()).filter(|(x, y)| x.pos == y.pos).count();
        assert!(same < a.node_count() / 10, "seeds produced near-identical layouts");
    }

    #[test]
    fn tiny_network_is_valid() {
        let net = generate(NetworkParams::tiny(7));
        assert_eq!(net.node_count(), 100);
        assert_eq!(net.link_count(), 160);
        assert!(net.is_connected());
    }

    #[test]
    #[should_panic(expected = "cannot connect")]
    fn rejects_too_few_links() {
        let _ = generate(NetworkParams {
            nodes: 100,
            links: 50,
            area_side: 1000.0,
            seed: 0,
            central_compression: 1.0,
        });
    }

    #[test]
    fn central_links_are_shorter_than_peripheral() {
        let net = generate(NetworkParams::athens());
        let c = net.bounds().centroid();
        let half = net.bounds().width().max(net.bounds().height()) * 0.5;
        let (mut central, mut peripheral) = (Vec::new(), Vec::new());
        for l in net.links() {
            let mid = net.node(l.a).pos.lerp(&net.node(l.b).pos, 0.5);
            let len = net.link_length(l.id);
            if mid.dist_l2(&c) < 0.25 * half {
                central.push(len);
            } else if mid.dist_l2(&c) > 0.7 * half {
                peripheral.push(len);
            }
        }
        assert!(!central.is_empty() && !peripheral.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&central) * 1.8 < mean(&peripheral),
            "downtown links should be much shorter: central {:.0} m vs peripheral {:.0} m",
            mean(&central),
            mean(&peripheral)
        );
    }

    #[test]
    fn node_degrees_are_road_like() {
        let net = generate(NetworkParams::athens());
        let mut max_deg = 0;
        let mut sum = 0usize;
        for n in net.nodes() {
            let d = net.incident(n.id).len();
            max_deg = max_deg.max(d);
            sum += d;
        }
        // Grid topology: degree at most 4, average 2 * links / nodes.
        assert!(max_deg <= 4);
        let avg = sum as f64 / net.node_count() as f64;
        assert!((avg - 2.0 * 1831.0 / 1125.0).abs() < 1e-9);
    }
}
