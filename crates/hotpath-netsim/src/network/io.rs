//! Plain-text serialization of road networks.
//!
//! A tiny line-oriented format so networks can be dumped, inspected, and
//! reloaded in examples and tests without extra dependencies:
//!
//! ```text
//! # comment
//! node <id> <x> <y>
//! link <id> <a> <b> <class>
//! ```

use super::graph::{Link, LinkId, Node, NodeId, RoadClass, RoadNetwork};
use hotpath_core::geometry::Point;
use std::fmt::Write as _;

/// Serializes a network to the text format.
pub fn to_text(net: &RoadNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# road network: {} nodes, {} links", net.node_count(), net.link_count());
    for n in net.nodes() {
        let _ = writeln!(out, "node {} {} {}", n.id.0, n.pos.x, n.pos.y);
    }
    for l in net.links() {
        let _ = writeln!(out, "link {} {} {} {}", l.id.0, l.a.0, l.b.0, class_tag(l.class));
    }
    out
}

/// Parses the text format back into a network.
///
/// # Errors
/// Returns a line-tagged message for any malformed input.
pub fn from_text(text: &str) -> Result<RoadNetwork, String> {
    let mut nodes = Vec::new();
    let mut links = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().expect("non-empty line");
        let mut field = |name: &str| -> Result<String, String> {
            parts.next().map(str::to_owned).ok_or(format!("line {}: missing {name}", lineno + 1))
        };
        match kind {
            "node" => {
                let id: u32 = parse(&field("id")?, lineno)?;
                let x: f64 = parse(&field("x")?, lineno)?;
                let y: f64 = parse(&field("y")?, lineno)?;
                nodes.push(Node { id: NodeId(id), pos: Point::new(x, y) });
            }
            "link" => {
                let id: u32 = parse(&field("id")?, lineno)?;
                let a: u32 = parse(&field("a")?, lineno)?;
                let b: u32 = parse(&field("b")?, lineno)?;
                let class = parse_class(&field("class")?, lineno)?;
                links.push(Link { id: LinkId(id), a: NodeId(a), b: NodeId(b), class });
            }
            other => return Err(format!("line {}: unknown record '{other}'", lineno + 1)),
        }
    }
    if nodes.is_empty() {
        return Err("no nodes".into());
    }
    Ok(RoadNetwork::new(nodes, links))
}

fn parse<T: std::str::FromStr>(s: &str, lineno: usize) -> Result<T, String> {
    s.parse().map_err(|_| format!("line {}: cannot parse '{s}'", lineno + 1))
}

fn class_tag(c: RoadClass) -> &'static str {
    match c {
        RoadClass::Motorway => "motorway",
        RoadClass::Highway => "highway",
        RoadClass::Primary => "primary",
        RoadClass::Secondary => "secondary",
    }
}

fn parse_class(s: &str, lineno: usize) -> Result<RoadClass, String> {
    match s {
        "motorway" => Ok(RoadClass::Motorway),
        "highway" => Ok(RoadClass::Highway),
        "primary" => Ok(RoadClass::Primary),
        "secondary" => Ok(RoadClass::Secondary),
        other => Err(format!("line {}: unknown road class '{other}'", lineno + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::generator::{generate, NetworkParams};

    #[test]
    fn round_trip_preserves_everything() {
        let net = generate(NetworkParams::tiny(3));
        let text = to_text(&net);
        let back = from_text(&text).unwrap();
        assert_eq!(back.node_count(), net.node_count());
        assert_eq!(back.link_count(), net.link_count());
        for (a, b) in net.nodes().iter().zip(back.nodes()) {
            assert_eq!(a.pos, b.pos);
        }
        for (a, b) in net.links().iter().zip(back.links()) {
            assert_eq!((a.a, a.b, a.class), (b.a, b.b, b.class));
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# hello\n\nnode 0 1.5 2.5\nnode 1 3.0 4.0\nlink 0 0 1 primary\n";
        let net = from_text(text).unwrap();
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.link_count(), 1);
        assert_eq!(net.link(LinkId(0)).class, RoadClass::Primary);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(from_text("garbage 1 2 3").unwrap_err().contains("line 1"));
        assert!(from_text("node 0 x y").unwrap_err().contains("line 1"));
        assert!(from_text("node 0 1 2\nlink 0 0 1 dirt\n")
            .unwrap_err()
            .contains("unknown road class"));
        assert!(from_text("# only comments\n").unwrap_err().contains("no nodes"));
    }
}
