//! Measurement noise models.
//!
//! The paper adds "white noise" to object locations: a value chosen
//! uniformly in `[-err, err]` added to both coordinates (Section 6.1).
//! A Gaussian model is provided for the `(eps, delta)` uncertainty
//! experiments of Section 4.1.

use hotpath_core::geometry::Point;
use hotpath_core::uncertainty::GaussianPoint;
use rand::Rng;

/// Uniform white noise `U[-err, err]` per coordinate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniformNoise {
    /// Half-range in meters (0 disables noise).
    pub err: f64,
}

impl UniformNoise {
    /// Creates the noise model; `err >= 0`.
    pub fn new(err: f64) -> Self {
        assert!(err >= 0.0, "err must be non-negative");
        UniformNoise { err }
    }

    /// Applies the noise to a true position.
    pub fn apply<R: Rng>(&self, p: Point, rng: &mut R) -> Point {
        if self.err == 0.0 {
            return p;
        }
        Point::new(
            p.x + rng.gen_range(-self.err..=self.err),
            p.y + rng.gen_range(-self.err..=self.err),
        )
    }
}

/// Gaussian sensing noise with per-axis standard deviation `sigma`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianNoise {
    /// Standard deviation in meters.
    pub sigma: f64,
}

impl GaussianNoise {
    /// Creates the model; `sigma >= 0`.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        GaussianNoise { sigma }
    }

    /// Draws a standard-normal sample via Box-Muller (keeps `rand`
    /// dependency feature-light — no `rand_distr` needed).
    fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            if z.is_finite() {
                return z;
            }
        }
    }

    /// A noisy measurement of the true position `p`: the *sampled* mean
    /// plus the sensor-reported `sigma`, as a location-sensing device
    /// would deliver it.
    pub fn measure<R: Rng>(&self, p: Point, rng: &mut R) -> GaussianPoint {
        let mean = Point::new(
            p.x + self.sigma * Self::standard_normal(rng),
            p.y + self.sigma * Self::standard_normal(rng),
        );
        GaussianPoint { mean, sigma_x: self.sigma, sigma_y: self.sigma }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_noise_is_bounded() {
        let noise = UniformNoise::new(1.5);
        let mut rng = SmallRng::seed_from_u64(1);
        let p = Point::new(100.0, 200.0);
        for _ in 0..1000 {
            let q = noise.apply(p, &mut rng);
            assert!((q.x - p.x).abs() <= 1.5);
            assert!((q.y - p.y).abs() <= 1.5);
        }
    }

    #[test]
    fn zero_err_is_identity() {
        let noise = UniformNoise::new(0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let p = Point::new(-3.0, 4.0);
        assert_eq!(noise.apply(p, &mut rng), p);
    }

    #[test]
    fn uniform_noise_covers_the_range() {
        // Not all samples cluster: spread statistics look uniform-ish.
        let noise = UniformNoise::new(1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let p = Point::ORIGIN;
        let samples: Vec<f64> = (0..4000).map(|_| noise.apply(p, &mut rng).x).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "uniform mean {mean}");
        // Var of U[-1,1] = 1/3.
        assert!((var - 1.0 / 3.0).abs() < 0.03, "uniform var {var}");
    }

    #[test]
    fn gaussian_measurements_have_right_moments() {
        let noise = GaussianNoise::new(2.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let p = Point::new(10.0, -10.0);
        let n = 8000;
        let samples: Vec<GaussianPoint> = (0..n).map(|_| noise.measure(p, &mut rng)).collect();
        let mean_x = samples.iter().map(|g| g.mean.x).sum::<f64>() / n as f64;
        let var_x = samples.iter().map(|g| (g.mean.x - mean_x) * (g.mean.x - mean_x)).sum::<f64>()
            / n as f64;
        assert!((mean_x - 10.0).abs() < 0.1, "mean {mean_x}");
        assert!((var_x - 4.0).abs() < 0.35, "var {var_x}");
        assert!(samples.iter().all(|g| g.sigma_x == 2.0 && g.sigma_y == 2.0));
    }

    #[test]
    fn zero_sigma_gaussian_is_exact() {
        let noise = GaussianNoise::new(0.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let p = Point::new(7.0, 8.0);
        let g = noise.measure(p, &mut rng);
        assert_eq!(g.mean, p);
    }
}
