//! A single object walking the road network.
//!
//! The paper's generator (Section 6.1): an object sits on a node, picks
//! an outgoing link with probability proportional to the link's weight
//! relative to all links at that node, then advances in fixed
//! displacements `s` — "the next location will be along that link or at
//! the opposite end node (at most)".

use crate::network::{ClosureSet, LinkId, NodeId, RoadNetwork};
use hotpath_core::geometry::Point;
use rand::Rng;

/// How a walker chooses the next link at a crossroad.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChoicePolicy {
    /// The paper's rule: probability proportional to link weight.
    /// `avoid_u_turn` excludes the arrival link when alternatives exist
    /// (a realism refinement; the paper is silent on U-turns).
    Weighted {
        /// Exclude immediate back-tracking when possible.
        avoid_u_turn: bool,
    },
    /// Prefer links that lead closer to a target point (weight-scaled);
    /// models crowds converging on a venue.
    Toward(Point),
    /// Prefer links that lead away from a point; models evacuation.
    Away(Point),
}

impl Default for ChoicePolicy {
    fn default() -> Self {
        ChoicePolicy::Weighted { avoid_u_turn: true }
    }
}

/// A moving object bound to the network.
#[derive(Clone, Debug)]
pub struct Walker {
    /// The node the current link was entered from.
    from: NodeId,
    /// The link being traversed.
    link: LinkId,
    /// Meters advanced along the link from `from`.
    offset: f64,
    policy: ChoicePolicy,
}

impl Walker {
    /// Creates a walker at `start`, immediately choosing a first link.
    pub fn new<R: Rng>(
        net: &RoadNetwork,
        start: NodeId,
        policy: ChoicePolicy,
        rng: &mut R,
    ) -> Self {
        let link = choose_link(net, start, None, policy, rng);
        Walker { from: start, link, offset: 0.0, policy }
    }

    /// Current true position (before measurement noise).
    pub fn position(&self, net: &RoadNetwork) -> Point {
        let a = net.node(self.from).pos;
        let b = net.node(net.other_end(self.link, self.from)).pos;
        let len = a.dist_l2(&b);
        if len == 0.0 {
            return a;
        }
        a.lerp(&b, (self.offset / len).clamp(0.0, 1.0))
    }

    /// The link currently being traversed.
    pub fn link(&self) -> LinkId {
        self.link
    }

    /// Replaces the link-choice policy; takes effect at the next
    /// crossroad (the current link is finished first).
    pub fn set_policy(&mut self, policy: ChoicePolicy) {
        self.policy = policy;
    }

    /// The node the walker is heading toward.
    pub fn heading_to(&self, net: &RoadNetwork) -> NodeId {
        net.other_end(self.link, self.from)
    }

    /// Advances by at most `displacement` meters: either along the
    /// current link or stopping at the far node (at most), per the
    /// paper. When a node is reached, the next link is chosen so the
    /// following move continues immediately.
    pub fn advance<R: Rng>(&mut self, net: &RoadNetwork, displacement: f64, rng: &mut R) -> Point {
        self.advance_avoiding(net, displacement, None, rng)
    }

    /// Like [`Self::advance`], but link choice at crossroads skips
    /// `closed` links while an open incident link exists. A walker
    /// already on a link that closes under it finishes that link first
    /// (it is physically there); a fully sealed crossroad falls back to
    /// the ordinary choice so nobody is stranded forever.
    pub fn advance_avoiding<R: Rng>(
        &mut self,
        net: &RoadNetwork,
        displacement: f64,
        closed: Option<&ClosureSet>,
        rng: &mut R,
    ) -> Point {
        debug_assert!(displacement > 0.0);
        let len = net.link_length(self.link);
        let remaining = len - self.offset;
        if displacement < remaining {
            self.offset += displacement;
        } else {
            // Arrive at the far node and pick the next link; movement
            // stops at the node for this step ("at most").
            let arrived = net.other_end(self.link, self.from);
            let came_from = self.link;
            self.from = arrived;
            self.link =
                choose_link_avoiding(net, arrived, Some(came_from), self.policy, closed, rng);
            self.offset = 0.0;
        }
        self.position(net)
    }
}

/// Weighted link choice at `node`. `arrived_by` is excluded under
/// `avoid_u_turn` when the node has alternatives.
fn choose_link<R: Rng>(
    net: &RoadNetwork,
    node: NodeId,
    arrived_by: Option<LinkId>,
    policy: ChoicePolicy,
    rng: &mut R,
) -> LinkId {
    choose_link_avoiding(net, node, arrived_by, policy, None, rng)
}

/// [`choose_link`] with an additional closure exclusion: closed links
/// are ineligible while at least one open incident link exists (a fully
/// sealed crossroad ignores the closures rather than strand the walker).
fn choose_link_avoiding<R: Rng>(
    net: &RoadNetwork,
    node: NodeId,
    arrived_by: Option<LinkId>,
    policy: ChoicePolicy,
    closed: Option<&ClosureSet>,
    rng: &mut R,
) -> LinkId {
    let incident = net.incident(node);
    assert!(!incident.is_empty(), "isolated node {node:?}");
    // Honor closures only when an open link remains at this node.
    let closed = closed.filter(|c| incident.iter().any(|&l| !c.is_closed(l)));
    let is_closed = |l: LinkId| closed.is_some_and(|c| c.is_closed(l));
    let open_count = incident.iter().filter(|&&l| !is_closed(l)).count();
    let exclude = match policy {
        ChoicePolicy::Weighted { avoid_u_turn: true } if open_count > 1 => arrived_by,
        _ => None,
    };
    let eligible = |l: LinkId| Some(l) != exclude && !is_closed(l);
    let here = net.node(node).pos;
    let weight_of = |l: LinkId| -> f64 {
        let base = net.link(l).class.weight();
        match policy {
            ChoicePolicy::Weighted { .. } => base,
            ChoicePolicy::Toward(target) | ChoicePolicy::Away(target) => {
                let next = net.node(net.other_end(l, node)).pos;
                let now = here.dist_l2(&target);
                let then = next.dist_l2(&target);
                let improves = match policy {
                    ChoicePolicy::Toward(_) => then < now,
                    _ => then > now,
                };
                // Strong bias toward improving links, but never zero so
                // walkers cannot dead-end.
                if improves {
                    base * 20.0
                } else {
                    base * 0.05
                }
            }
        }
    };
    let total: f64 = incident.iter().filter(|&&l| eligible(l)).map(|&l| weight_of(l)).sum();
    debug_assert!(total > 0.0);
    let mut pick = rng.gen_range(0.0..total);
    for &l in incident {
        if !eligible(l) {
            continue;
        }
        let w = weight_of(l);
        if pick < w {
            return l;
        }
        pick -= w;
    }
    // Floating-point slack: fall back to the last eligible link.
    *incident.iter().rev().find(|&&l| eligible(l)).expect("at least one eligible link")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{generate, NetworkParams, RoadClass};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net() -> RoadNetwork {
        generate(NetworkParams::tiny(11))
    }

    #[test]
    fn walker_starts_on_its_node() {
        let net = net();
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Walker::new(&net, NodeId(0), ChoicePolicy::default(), &mut rng);
        assert_eq!(w.position(&net), net.node(NodeId(0)).pos);
    }

    #[test]
    fn advance_moves_exactly_displacement_along_link() {
        let net = net();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut w = Walker::new(&net, NodeId(0), ChoicePolicy::default(), &mut rng);
        let start = w.position(&net);
        let p = w.advance(&net, 10.0, &mut rng);
        let moved = start.dist_l2(&p);
        // Either 10 m along the link or stopped at the node (short link).
        assert!(moved <= 10.0 + 1e-9, "moved {moved}");
        assert!(moved > 0.0);
    }

    #[test]
    fn position_stays_on_some_link() {
        let net = net();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut w = Walker::new(&net, NodeId(5), ChoicePolicy::default(), &mut rng);
        for _ in 0..500 {
            let p = w.advance(&net, 10.0, &mut rng);
            // The point lies on the current link within float noise.
            let l = net.link(w.link());
            let a = net.node(l.a).pos;
            let b = net.node(l.b).pos;
            let seg = hotpath_core::geometry::Segment::new(a, b);
            assert!(seg.dist_l2_point(&p) < 1e-6, "off-link at {p:?}");
        }
    }

    #[test]
    fn steps_never_exceed_displacement() {
        let net = net();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut w = Walker::new(&net, NodeId(9), ChoicePolicy::default(), &mut rng);
        let mut prev = w.position(&net);
        for _ in 0..300 {
            let p = w.advance(&net, 10.0, &mut rng);
            assert!(prev.dist_l2(&p) <= 10.0 + 1e-9);
            prev = p;
        }
    }

    #[test]
    fn weighted_choice_prefers_heavy_links() {
        // Find a node with both an arterial and a secondary link; the
        // arterial must be chosen far more often.
        let net = net();
        let mut rng = SmallRng::seed_from_u64(5);
        let node = net
            .nodes()
            .iter()
            .map(|n| n.id)
            .find(|&id| {
                let classes: Vec<RoadClass> =
                    net.incident(id).iter().map(|&l| net.link(l).class).collect();
                classes.iter().any(|c| c.weight() >= 8.0)
                    && classes.iter().any(|c| c.weight() <= 1.0)
            })
            .expect("tiny network should have a mixed node");
        let mut heavy = 0;
        let trials = 2000;
        for _ in 0..trials {
            let l = choose_link(
                &net,
                node,
                None,
                ChoicePolicy::Weighted { avoid_u_turn: false },
                &mut rng,
            );
            if net.link(l).class.weight() >= 8.0 {
                heavy += 1;
            }
        }
        assert!(heavy as f64 / trials as f64 > 0.6, "heavy links picked only {heavy}/{trials}");
    }

    #[test]
    fn toward_policy_reduces_distance_over_time() {
        let net = net();
        let mut rng = SmallRng::seed_from_u64(6);
        let target = net.node(NodeId(99)).pos;
        let mut w = Walker::new(&net, NodeId(0), ChoicePolicy::Toward(target), &mut rng);
        let start_dist = w.position(&net).dist_l2(&target);
        let mut best = start_dist;
        for _ in 0..2000 {
            let p = w.advance(&net, 10.0, &mut rng);
            best = best.min(p.dist_l2(&target));
        }
        assert!(
            best < start_dist * 0.25,
            "walker never approached the target: start {start_dist}, best {best}"
        );
    }

    #[test]
    fn away_policy_increases_distance_over_time() {
        let net = net();
        let mut rng = SmallRng::seed_from_u64(7);
        // Flee from the network center.
        let c = net.bounds().centroid();
        let start = net
            .nodes()
            .iter()
            .min_by(|a, b| a.pos.dist_l2(&c).total_cmp(&b.pos.dist_l2(&c)))
            .unwrap()
            .id;
        let mut w = Walker::new(&net, start, ChoicePolicy::Away(c), &mut rng);
        let d0 = w.position(&net).dist_l2(&c);
        let mut dmax = d0;
        for _ in 0..2000 {
            let p = w.advance(&net, 10.0, &mut rng);
            dmax = dmax.max(p.dist_l2(&c));
        }
        assert!(dmax > d0 + 500.0, "walker never fled: d0={d0} dmax={dmax}");
    }

    #[test]
    fn deterministic_given_seed() {
        let net = net();
        let run = || {
            let mut rng = SmallRng::seed_from_u64(42);
            let mut w = Walker::new(&net, NodeId(3), ChoicePolicy::default(), &mut rng);
            (0..100).map(|_| w.advance(&net, 10.0, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn closed_links_are_never_chosen_while_alternatives_exist() {
        use crate::network::ClosureSet;
        let net = net();
        // Close roughly a third of the network; walkers must keep moving
        // and, once their current link is finished, never enter a closed
        // link from a crossroad that still has an open one.
        let mut closed = ClosureSet::none(&net);
        for i in (0..net.link_count()).step_by(3) {
            closed.close(LinkId(i as u32));
        }
        let mut rng = SmallRng::seed_from_u64(8);
        let mut w = Walker::new(&net, NodeId(2), ChoicePolicy::default(), &mut rng);
        // Let the walker clear whatever link it spawned on.
        let spawn_link = w.link();
        for _ in 0..1000 {
            w.advance_avoiding(&net, 10.0, Some(&closed), &mut rng);
            if w.link() != spawn_link {
                break;
            }
        }
        for _ in 0..2000 {
            w.advance_avoiding(&net, 10.0, Some(&closed), &mut rng);
            if closed.is_closed(w.link()) {
                // Only legal when the crossroad it came through had no
                // open exit at all.
                let node = w.from;
                let all_sealed = net.incident(node).iter().all(|&l| closed.is_closed(l));
                assert!(all_sealed, "entered closed link {:?} at open node {node:?}", w.link());
            }
        }
    }

    #[test]
    fn closures_at_fully_sealed_nodes_do_not_strand() {
        use crate::network::ClosureSet;
        let net = net();
        let mut closed = ClosureSet::none(&net);
        for i in 0..net.link_count() {
            closed.close(LinkId(i as u32));
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let mut w = Walker::new(&net, NodeId(4), ChoicePolicy::default(), &mut rng);
        // Everything closed: walkers behave as if nothing were.
        let mut moved = 0.0;
        let mut prev = w.position(&net);
        for _ in 0..50 {
            let p = w.advance_avoiding(&net, 10.0, Some(&closed), &mut rng);
            moved += prev.dist_l2(&p);
            prev = p;
        }
        assert!(moved > 0.0, "walker stranded by total closure");
    }
}
