//! The full moving-object population.
//!
//! Reproduces the paper's workload (Section 6.1): `N` objects initially
//! at random nodes; a fraction `alpha` of them (the *agility*) is in
//! motion, each mover advancing by displacement `s` per timestamp;
//! location devices take one noisy measurement per timestamp.
//!
//! **Agility interpretation** (see DESIGN.md): the paper's prose admits
//! two readings of "at each timestamp, only a portion alpha of the
//! objects is allowed to move". [`AgilityModel::FixedMovers`] (default)
//! keeps a fixed alpha*N subset moving at constant speed — the only
//! reading consistent with the evaluation's link-long motion paths,
//! scores in the thousands, and SinglePath/DP index parity.
//! [`AgilityModel::Bernoulli`] redraws the moving subset each timestamp
//! (matching the "inter-arrival fluctuates" sentence literally); under
//! the time-parameterized path definition that shreds every trajectory
//! into near-`2 eps` fragments, which contradicts Figures 7-10, so it is
//! provided for study rather than reproduction. Independently,
//! [`PopulationParams::measure_when_stopped`] picks dense (default) or
//! movement-only sampling.

use super::noise::UniformNoise;
use super::walker::{ChoicePolicy, Walker};
use crate::network::{ClosureSet, NodeId, RoadNetwork};
use hotpath_core::geometry::{Point, TimePoint};
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How the agility parameter selects moving objects.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AgilityModel {
    /// A fixed `alpha * N` subset moves every timestamp at constant
    /// speed (the reading that reproduces the paper's evaluation).
    #[default]
    FixedMovers,
    /// Every object independently moves with probability `alpha` each
    /// timestamp (the literal per-timestamp reading).
    Bernoulli,
}

/// Workload parameters. Defaults mirror Table 2 of the paper.
#[derive(Clone, Copy, Debug)]
pub struct PopulationParams {
    /// Number of moving objects `N`.
    pub n: usize,
    /// Agility `alpha`: per-timestamp probability that an object moves.
    pub agility: f64,
    /// Displacement `s` per move, meters.
    pub displacement: f64,
    /// Positional error `err` (uniform white noise half-range), meters.
    pub err: f64,
    /// RNG seed.
    pub seed: u64,
    /// Link-choice policy at crossroads.
    pub policy: ChoicePolicy,
    /// When true (default, the paper's device model) every object
    /// measures every timestamp; when false only movers measure.
    pub measure_when_stopped: bool,
    /// Agility interpretation (see module docs).
    pub agility_model: AgilityModel,
}

impl PopulationParams {
    /// The paper's defaults: `alpha = 0.1`, `s = 10` m, `err = 1` m
    /// (with `N` chosen per experiment).
    pub fn paper_defaults(n: usize, seed: u64) -> Self {
        PopulationParams {
            n,
            agility: 0.1,
            displacement: 10.0,
            err: 1.0,
            seed,
            policy: ChoicePolicy::default(),
            measure_when_stopped: true,
            agility_model: AgilityModel::FixedMovers,
        }
    }
}

/// One measurement emitted by a moving object.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// The reporting object.
    pub object: ObjectId,
    /// The noisy measured timepoint.
    pub observed: TimePoint,
    /// The true position (ground truth for validation; not visible to
    /// the algorithms).
    pub truth: Point,
}

/// The population of walkers.
pub struct Population {
    walkers: Vec<Walker>,
    /// Under [`AgilityModel::FixedMovers`], whether each walker moves.
    is_mover: Vec<bool>,
    params: PopulationParams,
    noise: UniformNoise,
    rng: SmallRng,
}

impl Population {
    /// Spawns `n` walkers at random nodes of `net`.
    pub fn new(net: &RoadNetwork, params: PopulationParams) -> Self {
        assert!(params.n > 0, "population must be non-empty");
        assert!((0.0..=1.0).contains(&params.agility), "agility must be a probability");
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let walkers: Vec<Walker> = (0..params.n)
            .map(|_| {
                let start = NodeId(rng.gen_range(0..net.node_count() as u32));
                Walker::new(net, start, params.policy, &mut rng)
            })
            .collect();
        // The first round(alpha * n) walkers move; starts are already
        // random, so the subset is unbiased.
        let movers = (params.agility * params.n as f64).round() as usize;
        let is_mover = (0..params.n).map(|i| i < movers).collect();
        Population { walkers, is_mover, noise: UniformNoise::new(params.err), params, rng }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.walkers.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.walkers.is_empty()
    }

    /// The workload parameters.
    pub fn params(&self) -> &PopulationParams {
        &self.params
    }

    /// Flips every walker's link-choice policy in place (positions and
    /// mover assignments are preserved) — e.g. the evening rush
    /// reversing the morning's destination.
    pub fn set_policy(&mut self, policy: ChoicePolicy) {
        self.params.policy = policy;
        for w in &mut self.walkers {
            w.set_policy(policy);
        }
    }

    /// Retargets walkers individually: `f` receives each object id and
    /// returns the new policy, or `None` to leave that walker alone.
    /// Positions and mover assignments are preserved — this is how a
    /// rush-hour scenario points different commuters at different hubs.
    pub fn retarget(&mut self, mut f: impl FnMut(ObjectId) -> Option<ChoicePolicy>) {
        for (i, w) in self.walkers.iter_mut().enumerate() {
            if let Some(policy) = f(ObjectId(i as u64)) {
                w.set_policy(policy);
            }
        }
    }

    /// Number of objects currently moving (under
    /// [`AgilityModel::FixedMovers`]).
    pub fn movers(&self) -> usize {
        self.is_mover.iter().filter(|&&m| m).count()
    }

    /// Sets the number of concurrently moving objects (clamped to `N`):
    /// the first `movers` walkers move, the rest stand. Only meaningful
    /// under [`AgilityModel::FixedMovers`]; lets scenarios model
    /// time-varying load (rush-hour surges, overnight lulls).
    pub fn set_movers(&mut self, movers: usize) {
        let movers = movers.min(self.walkers.len());
        for (i, m) in self.is_mover.iter_mut().enumerate() {
            *m = i < movers;
        }
    }

    /// Initial (seed) timepoint of an object at simulation start: its
    /// exact position at `t`, used to seed the RayTrace filters.
    pub fn seed_timepoint(&self, net: &RoadNetwork, obj: ObjectId, t: Timestamp) -> TimePoint {
        TimePoint::new(self.walkers[obj.0 as usize].position(net), t)
    }

    /// The link `obj` currently stands or travels on (ground truth; the
    /// algorithms never see it — scenarios use it to verify invariants
    /// such as "nobody drives a closed road").
    pub fn walker_link(&self, obj: ObjectId) -> crate::network::LinkId {
        self.walkers[obj.0 as usize].link()
    }

    /// True when `obj` is currently in the moving subset (under
    /// [`AgilityModel::FixedMovers`]).
    pub fn is_mover(&self, obj: ObjectId) -> bool {
        self.is_mover[obj.0 as usize]
    }

    /// Advances one timestamp: each object moves with probability
    /// `agility`; every object (or, under sparse sampling, every mover)
    /// emits one noisy measurement. `out` is cleared and filled (reused
    /// across ticks to avoid per-tick allocation).
    pub fn tick(&mut self, net: &RoadNetwork, t: Timestamp, out: &mut Vec<Measurement>) {
        self.tick_avoiding(net, t, None, out)
    }

    /// [`Self::tick`] with road closures: movers finish their current
    /// link but never choose a `closed` link at a crossroad that still
    /// has an open exit. `None` behaves exactly like [`Self::tick`].
    pub fn tick_avoiding(
        &mut self,
        net: &RoadNetwork,
        t: Timestamp,
        closed: Option<&ClosureSet>,
        out: &mut Vec<Measurement>,
    ) {
        out.clear();
        for (i, w) in self.walkers.iter_mut().enumerate() {
            let moved = match self.params.agility_model {
                AgilityModel::FixedMovers => self.is_mover[i],
                AgilityModel::Bernoulli => self.rng.gen_bool(self.params.agility),
            };
            let truth = if moved {
                w.advance_avoiding(net, self.params.displacement, closed, &mut self.rng)
            } else {
                if !self.params.measure_when_stopped {
                    continue;
                }
                w.position(net)
            };
            let observed = self.noise.apply(truth, &mut self.rng);
            out.push(Measurement {
                object: ObjectId(i as u64),
                observed: TimePoint::new(observed, t),
                truth,
            });
        }
    }

    /// Convenience wrapper allocating a fresh vector.
    pub fn tick_collect(&mut self, net: &RoadNetwork, t: Timestamp) -> Vec<Measurement> {
        let mut out = Vec::new();
        self.tick(net, t, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{generate, NetworkParams};

    fn net() -> RoadNetwork {
        generate(NetworkParams::tiny(21))
    }

    #[test]
    fn tick_respects_agility_statistically() {
        // Under sparse sampling, the measurement rate equals the move
        // rate alpha.
        let net = net();
        let mut params = PopulationParams::paper_defaults(1000, 5);
        params.measure_when_stopped = false;
        let mut pop = Population::new(&net, params);
        let mut out = Vec::new();
        let mut total = 0usize;
        let ticks = 50;
        for t in 1..=ticks {
            pop.tick(&net, Timestamp(t), &mut out);
            total += out.len();
        }
        let rate = total as f64 / (ticks as usize * pop.len()) as f64;
        assert!((rate - 0.1).abs() < 0.02, "move rate {rate} far from alpha=0.1");
    }

    #[test]
    fn dense_sampling_measures_everyone_every_tick() {
        let net = net();
        let mut pop = Population::new(&net, PopulationParams::paper_defaults(200, 5));
        let mut out = Vec::new();
        for t in 1..=5 {
            pop.tick(&net, Timestamp(t), &mut out);
            assert_eq!(out.len(), 200, "dense sampling must measure all objects");
        }
        // Most measurements are of standing objects (alpha = 0.1): the
        // same object's consecutive positions rarely change.
        let mut prev: Vec<_> = Vec::new();
        pop.tick(&net, Timestamp(6), &mut out);
        prev.extend(out.iter().map(|m| m.truth));
        pop.tick(&net, Timestamp(7), &mut out);
        let still = out.iter().zip(prev.iter()).filter(|(m, p)| m.truth == **p).count();
        assert!(still > 150, "expected most objects standing, got {still}/200");
    }

    #[test]
    fn measurements_are_noisy_but_bounded() {
        let net = net();
        let mut pop = Population::new(&net, PopulationParams::paper_defaults(200, 6));
        let mut out = Vec::new();
        let mut any_noise = false;
        for t in 1..=20 {
            pop.tick(&net, Timestamp(t), &mut out);
            for m in &out {
                let gap = m.observed.p.dist_linf(&m.truth);
                assert!(gap <= 1.0 + 1e-12, "noise beyond err: {gap}");
                if gap > 0.0 {
                    any_noise = true;
                }
            }
        }
        assert!(any_noise, "noise never applied");
    }

    #[test]
    fn object_ids_are_stable_and_in_range() {
        let net = net();
        let mut pop = Population::new(&net, PopulationParams::paper_defaults(50, 7));
        let mut out = Vec::new();
        for t in 1..=10 {
            pop.tick(&net, Timestamp(t), &mut out);
            for m in &out {
                assert!((m.object.0 as usize) < 50);
                assert_eq!(m.observed.t, Timestamp(t));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let net = net();
        let run = || {
            let mut pop = Population::new(&net, PopulationParams::paper_defaults(100, 99));
            let mut all = Vec::new();
            let mut out = Vec::new();
            for t in 1..=30 {
                pop.tick(&net, Timestamp(t), &mut out);
                all.extend(out.iter().map(|m| (m.object.0, m.observed.p)));
            }
            all
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seed_timepoints_sit_on_the_network() {
        let net = net();
        let pop = Population::new(&net, PopulationParams::paper_defaults(20, 8));
        let bounds = net.bounds();
        for i in 0..20u64 {
            let tp = pop.seed_timepoint(&net, ObjectId(i), Timestamp(0));
            assert!(bounds.expand(1.0).contains(&tp.p));
        }
    }

    #[test]
    fn zero_agility_freezes_everyone() {
        let net = net();
        let mut params = PopulationParams::paper_defaults(50, 9);
        params.agility = 0.0;
        params.measure_when_stopped = false;
        let mut pop = Population::new(&net, params);
        let out = pop.tick_collect(&net, Timestamp(1));
        assert!(out.is_empty());
    }

    #[test]
    fn full_agility_moves_everyone() {
        let net = net();
        let mut params = PopulationParams::paper_defaults(50, 10);
        params.agility = 1.0;
        let mut pop = Population::new(&net, params);
        let out = pop.tick_collect(&net, Timestamp(1));
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn set_movers_scales_the_moving_subset() {
        let net = net();
        let mut params = PopulationParams::paper_defaults(100, 11);
        params.measure_when_stopped = false;
        let mut pop = Population::new(&net, params);
        assert_eq!(pop.movers(), 10); // alpha = 0.1
        pop.set_movers(60);
        assert_eq!(pop.movers(), 60);
        assert_eq!(pop.tick_collect(&net, Timestamp(1)).len(), 60);
        pop.set_movers(5);
        assert_eq!(pop.tick_collect(&net, Timestamp(2)).len(), 5);
        // Clamped at N.
        pop.set_movers(10_000);
        assert_eq!(pop.movers(), 100);
        assert!(pop.is_mover(ObjectId(99)));
    }

    #[test]
    fn retarget_changes_individual_policies() {
        let net = net();
        let mut pop = Population::new(&net, PopulationParams::paper_defaults(10, 12));
        let target = net.bounds().centroid();
        // Point the even walkers at the center, leave the odd ones.
        pop.retarget(|obj| (obj.0 % 2 == 0).then_some(ChoicePolicy::Toward(target)));
        // No panic, and the population still ticks deterministically.
        let a = pop.tick_collect(&net, Timestamp(1));
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn tick_avoiding_none_matches_tick() {
        let net = net();
        let run = |avoid: bool| {
            let mut pop = Population::new(&net, PopulationParams::paper_defaults(80, 13));
            let mut out = Vec::new();
            let mut all = Vec::new();
            for t in 1..=40 {
                if avoid {
                    pop.tick_avoiding(&net, Timestamp(t), None, &mut out);
                } else {
                    pop.tick(&net, Timestamp(t), &mut out);
                }
                all.extend(out.iter().map(|m| (m.object.0, m.observed.p)));
            }
            all
        };
        assert_eq!(run(false), run(true));
    }
}
