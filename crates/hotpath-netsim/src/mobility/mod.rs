//! Moving-object mobility: walkers, noise models, and the population.

mod noise;
mod population;
mod walker;

pub use noise::{GaussianNoise, UniformNoise};
pub use population::{AgilityModel, Measurement, Population, PopulationParams};
pub use walker::{ChoicePolicy, Walker};
