//! The unified scenario subsystem: every workload that feeds the
//! hot-path pipeline is a [`Scenario`] — a named, seeded generator of
//! per-tick measurement batches with scenario-specific invariants the
//! driver can verify after a run.
//!
//! The [`REGISTRY`] lists every built-in scenario; `experiments
//! scenario <name|all>` (hotpath-bench) and the integration tests build
//! them through [`build`]. Scenarios own their network, population, and
//! event schedule (surge windows, road closures, sensor outages), so a
//! driver only needs `tick` + `seed_timepoint` — exactly the interface
//! the paper's evaluation loop uses.
//!
//! Built-ins:
//! * `sporting_event` — a crowd converging on a venue (Section 1);
//! * `evacuation` — a crowd fleeing a danger point (Section 1);
//! * `sensor_dropout` — a converging crowd with a mid-run sensor outage;
//! * `rush_hour_surge` — a time-varying Poisson surge of commuters
//!   concentrated on the network's hub vertices (stresses shard
//!   imbalance: most paths start in a few cells);
//! * `evacuation_reroute` — an evacuation whose arterial escape routes
//!   close mid-run, forcing correlated path churn and hotness decay;
//! * `surge_dropout` — a composite built with the [`DropoutOverlay`]
//!   combinator: the rush-hour surge with a sensor outage at its peak,
//!   proving registry scenarios compose.

use crate::mobility::{ChoicePolicy, Measurement, Population, PopulationParams};
use crate::network::{generate, ClosureSet, NetworkParams, NodeId, RoadClass, RoadNetwork};
use crate::scenarios::{evacuation, nearest_node, sensor_dropout, sporting_event, DropoutWindow};
use hotpath_core::config::AdmissionPolicy;
use hotpath_core::geometry::TimePoint;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scale knobs every scenario understands. Scenario-specific structure
/// (surge timing, closure sets, outage windows) derives from these
/// deterministically, so one `(params, name)` pair fully describes a
/// workload.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioParams {
    /// Number of moving objects `N`.
    pub n: usize,
    /// RNG seed (network, population, and event draws all derive from
    /// it — same seed, same measurement stream, bit for bit).
    pub seed: u64,
    /// Run length in timestamps.
    pub duration: u64,
    /// The road network to generate.
    pub network: NetworkParams,
}

impl ScenarioParams {
    /// CI-friendly defaults: a tiny network, 300 objects, 150 ticks.
    pub fn quick(seed: u64) -> Self {
        ScenarioParams { n: 300, seed, duration: 150, network: NetworkParams::tiny(seed) }
    }
}

/// One epoch boundary as the driver observed it.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochSample {
    /// The boundary timestamp.
    pub timestamp: Timestamp,
    /// Motion paths stored after processing.
    pub index_size: usize,
    /// Top-k score after processing.
    pub top_k_score: f64,
    /// Top-k path ids, hottest first (ties broken as the coordinator
    /// breaks them).
    pub top_ids: Vec<u64>,
    /// The hottest path's hotness (crossing count), when any.
    pub top_hotness: Option<u32>,
    /// Sessions Healthy after the epoch (0 while sessions are off).
    pub sessions_healthy: usize,
    /// Sessions Dropped after the epoch.
    pub sessions_dropped: usize,
    /// Cumulative fresh session connects.
    pub session_connects: u64,
    /// Cumulative session reconnects.
    pub session_reconnects: u64,
    /// Cumulative session ejections.
    pub session_ejections: u64,
    /// Cumulative states turned away by admission control.
    pub turned_away: u64,
    /// Cumulative epochs that degraded Phase B under overload.
    pub degraded_epochs: u64,
    /// Phase-B eval workers the epoch actually used (1 = sequential).
    pub phase_b_workers: usize,
    /// States Phase A deferred to Phase B this epoch. Deterministic —
    /// identical at every worker, shard, and engine count, so parity
    /// fingerprints include it.
    pub phase_b_deferred: usize,
    /// Chunks stolen across Phase-B workers this epoch. Timing-driven
    /// and machine-dependent; excluded from parity fingerprints.
    pub phase_b_stolen: u64,
    /// Worst-worker / mean per-worker Phase-B busy-time ratio (1.0 when
    /// sequential). Timing-driven; excluded from parity fingerprints.
    pub phase_b_imbalance: f64,
}

/// Everything a driver run exposes to [`Scenario::check_invariants`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioOutcome {
    /// Per-epoch observations in order.
    pub per_epoch: Vec<EpochSample>,
    /// Final top-k as `(path id, hotness)`, hottest first.
    pub final_top_k: Vec<(u64, u32)>,
    /// Measurements the scenario emitted over the whole run.
    pub measurements: u64,
    /// Client state reports that reached the coordinator.
    pub reports: u64,
}

impl ScenarioOutcome {
    /// The first epoch at or after `t`.
    pub fn epoch_at(&self, t: Timestamp) -> Option<&EpochSample> {
        self.per_epoch.iter().find(|e| e.timestamp >= t)
    }
}

/// What a declared fault does to the clients it selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The client vanishes: no measurements reach the pipeline, and on
    /// return the client reconnects with a fresh filter (new session).
    Disconnect,
    /// The client stalls: no measurements reach the pipeline, but on
    /// return it resumes with its existing filter state.
    Stall,
}

/// One declared fault: during `[from, until)` a pseudo-random
/// `fraction` of the fleet (stable for the whole window) suffers
/// `kind`. Scenarios *declare* windows; the simulation driver
/// *executes* them, so the raw measurement stream stays deterministic
/// and fault-free drivers (benches, unit tests) are unaffected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// What happens to the selected clients.
    pub kind: FaultKind,
    /// First timestamp the fault is active.
    pub from: Timestamp,
    /// First timestamp after the fault (exclusive end).
    pub until: Timestamp,
    /// Fraction of the fleet affected, in `[0, 1]`. `1.0` selects
    /// every client.
    pub fraction: f64,
    /// Mixed into the membership hash so overlapping windows pick
    /// independent victim sets.
    pub salt: u64,
}

/// SplitMix64 finalizer: a cheap, high-quality avalanche used for
/// stable per-window victim selection.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultWindow {
    /// Whether the window covers timestamp `t`.
    pub fn active(&self, t: Timestamp) -> bool {
        self.from <= t && t < self.until
    }

    /// Whether this window selects `obj` as a victim under `seed`.
    /// Membership is a pure function of `(seed, salt, obj)` — stable
    /// across the window and across re-runs, so faulted runs are
    /// reproducible and restart-parity checks can straddle a storm.
    pub fn selects(&self, seed: u64, obj: ObjectId) -> bool {
        if self.fraction >= 1.0 {
            return true;
        }
        if self.fraction <= 0.0 {
            return false;
        }
        let h = splitmix(seed ^ self.salt ^ obj.0);
        (h as f64 / u64::MAX as f64) < self.fraction
    }

    /// Whether the window suppresses `obj`'s measurement at `t`.
    pub fn suppresses(&self, seed: u64, obj: ObjectId, t: Timestamp) -> bool {
        self.active(t) && self.selects(seed, obj)
    }
}

/// Robustness knobs a scenario asks its driver to enable: the session
/// lease, the ingest bound, and the degraded-epoch threshold. Drivers
/// without a session layer may ignore the hint (the scenario's fault
/// invariants then cannot be checked).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RobustnessHint {
    /// Heartbeat lease in timestamps (`> 0` turns sessions on).
    pub lease: u64,
    /// Extra Dropped-to-Ejected grace in timestamps.
    pub grace: u64,
    /// Per-epoch ingest cap (`0` = unbounded).
    pub queue_cap: usize,
    /// What to do with states over the cap.
    pub policy: AdmissionPolicy,
    /// Batch size beyond which Phase B is shed (`0` = never).
    pub degrade_threshold: usize,
}

/// A named, seeded workload: the one interface every driver (simulation
/// harness, experiments CLI, benches, tests) uses to pull measurement
/// streams.
pub trait Scenario {
    /// Registry name (stable; used by CLIs and reports).
    fn name(&self) -> &'static str;
    /// The network the population walks (for map rendering and ground
    /// truth; the hot-path algorithms never see it).
    fn network(&self) -> &RoadNetwork;
    /// Number of objects.
    fn n(&self) -> usize;
    /// Run length in timestamps.
    fn duration(&self) -> u64;
    /// Sliding-window length this scenario's invariants assume (e.g.
    /// the dropout outage must be shorter than the window).
    fn window_hint(&self) -> u64 {
        40
    }
    /// The exact position of `obj` at simulation start (seeds the
    /// client filters).
    fn seed_timepoint(&self, obj: ObjectId, t: Timestamp) -> TimePoint;
    /// Advances one timestamp and fills `out` with the surviving
    /// measurements (scenario events — outages, closures, surges —
    /// already applied). `out` is cleared first; reuse it across ticks.
    fn tick(&mut self, t: Timestamp, out: &mut Vec<Measurement>);
    /// Verifies the scenario's expected story against what the driver
    /// observed (plus any ground truth tracked during `tick`). Called
    /// once, after the final tick.
    fn check_invariants(&self, outcome: &ScenarioOutcome) -> Result<(), String>;
    /// Faults the driver should inject while executing this scenario.
    /// Empty by default: most scenarios are fault-free.
    fn fault_windows(&self) -> Vec<FaultWindow> {
        Vec::new()
    }
    /// Session/admission configuration this scenario's invariants
    /// assume, when any. `None` (the default) leaves the driver's
    /// config untouched.
    fn robustness_hint(&self) -> Option<RobustnessHint> {
        None
    }
}

/// A registry row: name, one-line story, and builder.
#[derive(Clone, Copy)]
pub struct ScenarioSpec {
    /// Stable scenario name (CLI argument).
    pub name: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    /// Builds the scenario at the given scale.
    pub build: fn(&ScenarioParams) -> Box<dyn Scenario>,
}

/// Every built-in scenario, in presentation order.
pub const REGISTRY: &[ScenarioSpec] = &[
    ScenarioSpec {
        name: "sporting_event",
        summary: "crowd converging on a venue along weighted arterials",
        build: |p| Box::new(SportingEventScenario::new(p)),
    },
    ScenarioSpec {
        name: "evacuation",
        summary: "crowd fleeing a danger point along popular escape routes",
        build: |p| Box::new(EvacuationScenario::new(p)),
    },
    ScenarioSpec {
        name: "sensor_dropout",
        summary: "converging crowd with a mid-run sensor outage window",
        build: |p| Box::new(SensorDropoutScenario::new(p)),
    },
    ScenarioSpec {
        name: "rush_hour_surge",
        summary: "time-varying Poisson commuter surge concentrated on hub vertices",
        build: |p| Box::new(RushHourSurgeScenario::new(p)),
    },
    ScenarioSpec {
        name: "flash_crowd",
        summary: "whole fleet stampedes into one hub cell, skewing Phase-B region load",
        build: |p| Box::new(FlashCrowdScenario::new(p)),
    },
    ScenarioSpec {
        name: "evacuation_reroute",
        summary: "evacuation with mid-run arterial closures forcing path churn",
        build: |p| Box::new(EvacuationRerouteScenario::new(p)),
    },
    ScenarioSpec {
        name: "surge_dropout",
        summary: "composite: rush-hour surge with a mid-surge sensor outage window",
        build: |p| {
            // The outage lands at the surge's peak (the surge spans
            // 30-70% of the run) and silences every third sensor —
            // short enough that the window keeps the corridors hot.
            let from = p.duration / 2;
            let until = from + p.duration / 8;
            Box::new(DropoutOverlay::new(
                "surge_dropout",
                Box::new(RushHourSurgeScenario::new(p)),
                DropoutWindow::new(Timestamp(from), Timestamp(until), 3),
            ))
        },
    },
    ScenarioSpec {
        name: "mass_disconnect",
        summary: "half the fleet vanishes mid-run past lease and grace, then returns",
        build: |p| Box::new(FaultStoryScenario::new(p, FaultStory::MassDisconnect)),
    },
    ScenarioSpec {
        name: "reconnect_storm",
        summary: "the whole fleet drops briefly and reconnects at once, hammering admission",
        build: |p| Box::new(FaultStoryScenario::new(p, FaultStory::ReconnectStorm)),
    },
    ScenarioSpec {
        name: "slow_client_stall",
        summary: "a quarter of the fleet stalls silently until ejected; service continues",
        build: |p| Box::new(FaultStoryScenario::new(p, FaultStory::SlowClientStall)),
    },
];

/// Looks up a registry row by name.
pub fn spec(name: &str) -> Option<&'static ScenarioSpec> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Builds a registered scenario by name at the given scale.
pub fn build(name: &str, params: &ScenarioParams) -> Option<Box<dyn Scenario>> {
    spec(name).map(|s| (s.build)(params))
}

/// Shared sanity floor: the pipeline discovered something and scored it.
fn require_discovery(name: &str, outcome: &ScenarioOutcome) -> Result<(), String> {
    if outcome.reports == 0 {
        return Err(format!("{name}: no client ever reported"));
    }
    if outcome.final_top_k.is_empty() {
        return Err(format!("{name}: empty final top-k"));
    }
    if !outcome.per_epoch.iter().any(|e| e.top_k_score > 0.0) {
        return Err(format!("{name}: top-k never scored"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// sporting_event
// ---------------------------------------------------------------------

/// A crowd drifting toward a central venue (Section 1's targeted
/// advertising story) behind the [`Scenario`] interface.
pub struct SportingEventScenario {
    net: RoadNetwork,
    pop: Population,
    params: ScenarioParams,
}

impl SportingEventScenario {
    /// Builds the scenario: venue at the node nearest the map center.
    pub fn new(params: &ScenarioParams) -> Self {
        let net = generate(params.network);
        let venue = nearest_node(&net, net.bounds().centroid());
        let pop = sporting_event(&net, params.n, venue, params.seed.wrapping_add(1));
        SportingEventScenario { net, pop, params: *params }
    }
}

impl Scenario for SportingEventScenario {
    fn name(&self) -> &'static str {
        "sporting_event"
    }
    fn network(&self) -> &RoadNetwork {
        &self.net
    }
    fn n(&self) -> usize {
        self.params.n
    }
    fn duration(&self) -> u64 {
        self.params.duration
    }
    fn seed_timepoint(&self, obj: ObjectId, t: Timestamp) -> TimePoint {
        self.pop.seed_timepoint(&self.net, obj, t)
    }
    fn tick(&mut self, t: Timestamp, out: &mut Vec<Measurement>) {
        self.pop.tick(&self.net, t, out);
    }
    fn check_invariants(&self, outcome: &ScenarioOutcome) -> Result<(), String> {
        require_discovery(self.name(), outcome)?;
        // The crowd converges, so some corridor must heat up beyond a
        // single crossing.
        let hottest = outcome.final_top_k.first().map(|&(_, h)| h).unwrap_or(0);
        if hottest < 2 {
            return Err(format!("sporting_event: no corridor heated up (hottest {hottest})"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// evacuation
// ---------------------------------------------------------------------

/// A crowd fleeing the map center (Section 1's emergency-response
/// story) behind the [`Scenario`] interface.
pub struct EvacuationScenario {
    net: RoadNetwork,
    pop: Population,
    params: ScenarioParams,
}

impl EvacuationScenario {
    /// Builds the scenario: danger at the map centroid.
    pub fn new(params: &ScenarioParams) -> Self {
        let net = generate(params.network);
        let danger = net.bounds().centroid();
        let pop = evacuation(&net, params.n, danger, params.seed.wrapping_add(1));
        EvacuationScenario { net, pop, params: *params }
    }
}

impl Scenario for EvacuationScenario {
    fn name(&self) -> &'static str {
        "evacuation"
    }
    fn network(&self) -> &RoadNetwork {
        &self.net
    }
    fn n(&self) -> usize {
        self.params.n
    }
    fn duration(&self) -> u64 {
        self.params.duration
    }
    fn seed_timepoint(&self, obj: ObjectId, t: Timestamp) -> TimePoint {
        self.pop.seed_timepoint(&self.net, obj, t)
    }
    fn tick(&mut self, t: Timestamp, out: &mut Vec<Measurement>) {
        self.pop.tick(&self.net, t, out);
    }
    fn check_invariants(&self, outcome: &ScenarioOutcome) -> Result<(), String> {
        require_discovery(self.name(), outcome)
    }
}

// ---------------------------------------------------------------------
// sensor_dropout
// ---------------------------------------------------------------------

/// A converging crowd whose every `stride`-th sensor goes dark over a
/// mid-run window; the top-k must ride the outage out.
pub struct SensorDropoutScenario {
    net: RoadNetwork,
    pop: Population,
    window: DropoutWindow,
    params: ScenarioParams,
}

impl SensorDropoutScenario {
    /// Builds the scenario; the outage silences every other sensor over
    /// the middle of the run, shorter than the hotness window.
    pub fn new(params: &ScenarioParams) -> Self {
        let net = generate(params.network);
        let venue = nearest_node(&net, net.bounds().centroid());
        let from = params.duration * 8 / 15;
        let until = from + params.duration / 6;
        let (pop, window) = sensor_dropout(
            &net,
            params.n,
            venue,
            params.seed.wrapping_add(1),
            Timestamp(from),
            Timestamp(until),
            2,
        );
        SensorDropoutScenario { net, pop, window, params: *params }
    }

    /// The outage window.
    pub fn dropout_window(&self) -> DropoutWindow {
        self.window
    }
}

impl Scenario for SensorDropoutScenario {
    fn name(&self) -> &'static str {
        "sensor_dropout"
    }
    fn network(&self) -> &RoadNetwork {
        &self.net
    }
    fn n(&self) -> usize {
        self.params.n
    }
    fn duration(&self) -> u64 {
        self.params.duration
    }
    fn window_hint(&self) -> u64 {
        // The outage must be shorter than the sliding window so
        // pre-outage crossings keep the hot set alive.
        60
    }
    fn seed_timepoint(&self, obj: ObjectId, t: Timestamp) -> TimePoint {
        self.pop.seed_timepoint(&self.net, obj, t)
    }
    fn tick(&mut self, t: Timestamp, out: &mut Vec<Measurement>) {
        self.pop.tick(&self.net, t, out);
        out.retain(|m| !self.window.drops(m.object, t));
    }
    fn check_invariants(&self, outcome: &ScenarioOutcome) -> Result<(), String> {
        require_discovery(self.name(), outcome)?;
        // Stability: the hottest pre-outage corridor is still in the
        // top-k when the sensors come back...
        let at_start =
            outcome.epoch_at(self.window.from).ok_or("sensor_dropout: no epoch at outage start")?;
        let Some(&top_start) = at_start.top_ids.first() else {
            return Err("sensor_dropout: empty top-k at outage start".into());
        };
        let at_end = outcome
            .epoch_at(self.window.until)
            .ok_or("sensor_dropout: no epoch after outage end")?;
        if !at_end.top_ids.contains(&top_start) {
            return Err(format!(
                "sensor_dropout: pre-outage top path {top_start} fell out of the post-outage \
                 top-k {:?}",
                at_end.top_ids
            ));
        }
        // ...and the score never collapses while sensors are dark.
        for e in &outcome.per_epoch {
            if e.timestamp >= self.window.from
                && e.timestamp <= self.window.until
                && e.top_k_score <= 0.0
            {
                return Err(format!(
                    "sensor_dropout: top-k score collapsed during the outage (t={:?})",
                    e.timestamp
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// rush_hour_surge
// ---------------------------------------------------------------------

/// Samples a Poisson count with rate `lambda` (Knuth for small rates, a
/// clamped normal approximation for large ones — exact enough for load
/// shaping, and free of `exp(-lambda)` underflow).
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen_range(0.0..1.0);
        let mut count = 0usize;
        while product > limit {
            product *= rng.gen_range(0.0..1.0f64);
            count += 1;
        }
        count
    } else {
        // Normal approximation N(lambda, lambda), Box-Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (lambda + lambda.sqrt() * z).round().max(0.0) as usize
    }
}

/// A commuter rush hour: object activity follows a time-varying Poisson
/// surge, and the surging commuters all head for a handful of hub
/// vertices (the heaviest crossroads), concentrating path starts on a
/// few grid cells — the worst case for the sharded coordinator's
/// start-vertex routing.
pub struct RushHourSurgeScenario {
    net: RoadNetwork,
    pop: Population,
    rng: SmallRng,
    hubs: Vec<NodeId>,
    params: ScenarioParams,
    base_movers: usize,
    surge_from: u64,
    surge_until: u64,
    /// Largest concurrent mover count observed (ground truth for the
    /// surge invariant).
    peak_movers: usize,
}

impl RushHourSurgeScenario {
    /// Builds the scenario: surge over the middle 40% of the run, rate
    /// peaking at half the population, targets spread over the top-3
    /// hub vertices.
    pub fn new(params: &ScenarioParams) -> Self {
        let net = generate(params.network);
        let hubs = Self::hub_nodes(&net, 3);
        let pop = Population::new(
            &net,
            PopulationParams {
                // Off-peak trickle; the surge raises activity on top.
                agility: 0.1,
                ..PopulationParams::paper_defaults(params.n, params.seed.wrapping_add(1))
            },
        );
        let base_movers = pop.movers();
        RushHourSurgeScenario {
            net,
            pop,
            rng: SmallRng::seed_from_u64(params.seed.wrapping_add(2)),
            hubs,
            params: *params,
            base_movers,
            surge_from: params.duration * 3 / 10,
            surge_until: params.duration * 7 / 10,
            peak_movers: base_movers,
        }
    }

    /// The `k` nodes with the largest incident link weight (degree
    /// weighted by road class) — the arterial interchanges commuters
    /// funnel through. Ties break toward the smaller id.
    pub fn hub_nodes(net: &RoadNetwork, k: usize) -> Vec<NodeId> {
        let mut ranked: Vec<(f64, NodeId)> = net
            .nodes()
            .iter()
            .map(|n| {
                let w: f64 = net.incident(n.id).iter().map(|&l| net.link(l).class.weight()).sum();
                (w, n.id)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        ranked.truncate(k);
        ranked.into_iter().map(|(_, id)| id).collect()
    }

    /// The surge's Poisson rate at `t`: a triangle ramping from 0 at the
    /// surge edges to `n/2` at its midpoint.
    fn surge_rate(&self, t: u64) -> f64 {
        if t < self.surge_from || t >= self.surge_until {
            return 0.0;
        }
        let span = (self.surge_until - self.surge_from).max(1) as f64;
        let mid = self.surge_from as f64 + span / 2.0;
        let dist = (t as f64 - mid).abs() / (span / 2.0);
        (1.0 - dist).max(0.0) * self.params.n as f64 * 0.5
    }

    /// The hub nodes the surge converges on.
    pub fn hubs(&self) -> &[NodeId] {
        &self.hubs
    }
}

impl Scenario for RushHourSurgeScenario {
    fn name(&self) -> &'static str {
        "rush_hour_surge"
    }
    fn network(&self) -> &RoadNetwork {
        &self.net
    }
    fn n(&self) -> usize {
        self.params.n
    }
    fn duration(&self) -> u64 {
        self.params.duration
    }
    fn seed_timepoint(&self, obj: ObjectId, t: Timestamp) -> TimePoint {
        self.pop.seed_timepoint(&self.net, obj, t)
    }
    fn tick(&mut self, t: Timestamp, out: &mut Vec<Measurement>) {
        let raw = t.raw();
        if raw == self.surge_from {
            // The morning commute begins: everyone picks a hub.
            let hubs: Vec<_> = self.hubs.iter().map(|&h| self.net.node(h).pos).collect();
            self.pop.retarget(|obj| Some(ChoicePolicy::Toward(hubs[obj.0 as usize % hubs.len()])));
        }
        if raw == self.surge_until {
            // Surge over: back to undirected weighted wandering.
            self.pop.retarget(|_| Some(ChoicePolicy::default()));
        }
        let rate = self.surge_rate(raw);
        let surging = poisson(&mut self.rng, rate);
        let movers = (self.base_movers + surging).min(self.params.n);
        self.pop.set_movers(movers);
        self.peak_movers = self.peak_movers.max(movers);
        self.pop.tick(&self.net, t, out);
    }
    fn check_invariants(&self, outcome: &ScenarioOutcome) -> Result<(), String> {
        require_discovery(self.name(), outcome)?;
        // The surge must actually have surged.
        if self.peak_movers <= self.base_movers {
            return Err(format!(
                "rush_hour_surge: surge never rose above the base load ({} movers)",
                self.base_movers
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// flash_crowd
// ---------------------------------------------------------------------

/// A flash crowd: the entire fleet stampedes toward *one* hub vertex
/// for the middle of the run, concentrating every FSA into a handful of
/// grid cells. This is the adversarial case for parallel Phase B — a
/// region partition assigns nearly all deferred states to one region,
/// so without work stealing one worker does everything while the rest
/// idle. The invariant bounds the observed per-worker busy-time
/// imbalance whenever the run actually executed Phase B in parallel
/// (it is vacuous at `phase_b_workers = 1`, e.g. on single-core CI).
pub struct FlashCrowdScenario {
    net: RoadNetwork,
    pop: Population,
    rng: SmallRng,
    hub: NodeId,
    params: ScenarioParams,
    base_movers: usize,
    surge_from: u64,
    surge_until: u64,
    /// Largest concurrent mover count observed (ground truth for the
    /// stampede invariant).
    peak_movers: usize,
}

impl FlashCrowdScenario {
    /// Builds the scenario: a trickle of weighted wanderers, then over
    /// the middle 40% of the run the whole fleet moves and every mover
    /// heads for the single heaviest crossroads.
    pub fn new(params: &ScenarioParams) -> Self {
        let net = generate(params.network);
        let hub = RushHourSurgeScenario::hub_nodes(&net, 1)[0];
        let pop = Population::new(
            &net,
            PopulationParams {
                agility: 0.1,
                ..PopulationParams::paper_defaults(params.n, params.seed.wrapping_add(1))
            },
        );
        let base_movers = pop.movers();
        FlashCrowdScenario {
            net,
            pop,
            rng: SmallRng::seed_from_u64(params.seed.wrapping_add(2)),
            hub,
            params: *params,
            base_movers,
            surge_from: params.duration * 3 / 10,
            surge_until: params.duration * 7 / 10,
            peak_movers: base_movers,
        }
    }

    /// The single vertex the crowd converges on.
    pub fn hub(&self) -> NodeId {
        self.hub
    }
}

impl Scenario for FlashCrowdScenario {
    fn name(&self) -> &'static str {
        "flash_crowd"
    }
    fn network(&self) -> &RoadNetwork {
        &self.net
    }
    fn n(&self) -> usize {
        self.params.n
    }
    fn duration(&self) -> u64 {
        self.params.duration
    }
    fn seed_timepoint(&self, obj: ObjectId, t: Timestamp) -> TimePoint {
        self.pop.seed_timepoint(&self.net, obj, t)
    }
    fn tick(&mut self, t: Timestamp, out: &mut Vec<Measurement>) {
        let raw = t.raw();
        if raw == self.surge_from {
            // The stampede begins: every object heads for the one hub.
            let hub = self.net.node(self.hub).pos;
            self.pop.retarget(move |_| Some(ChoicePolicy::Toward(hub)));
        }
        if raw == self.surge_until {
            // Crowd disperses: back to undirected weighted wandering.
            self.pop.retarget(|_| Some(ChoicePolicy::default()));
        }
        // A flash crowd is a step, not a ramp: the full fleet moves for
        // the whole window, with a small Poisson flicker so epochs are
        // not byte-identical to each other.
        let movers = if raw >= self.surge_from && raw < self.surge_until {
            let flicker = poisson(&mut self.rng, (self.params.n / 20) as f64);
            self.params.n.saturating_sub(flicker).max(self.base_movers)
        } else {
            self.base_movers
        };
        self.pop.set_movers(movers);
        self.peak_movers = self.peak_movers.max(movers);
        self.pop.tick(&self.net, t, out);
    }
    fn check_invariants(&self, outcome: &ScenarioOutcome) -> Result<(), String> {
        require_discovery(self.name(), outcome)?;
        // The stampede must actually have stampeded.
        if self.peak_movers <= self.base_movers {
            return Err(format!(
                "flash_crowd: the crowd never rose above the base load ({} movers)",
                self.base_movers
            ));
        }
        // Load-balance bound, judged only on epochs that really ran
        // Phase B in parallel with enough deferred states for chunking
        // to matter. Vacuous when the run was sequential (workers = 1)
        // or Phase B stayed small — single-core CI still passes.
        let parallel: Vec<&EpochSample> = outcome
            .per_epoch
            .iter()
            .filter(|e| e.phase_b_workers > 1 && e.phase_b_deferred >= 64)
            .collect();
        if parallel.is_empty() {
            return Ok(());
        }
        for e in parallel.iter() {
            if !e.phase_b_imbalance.is_finite() || e.phase_b_imbalance < 1.0 - 1e-9 {
                return Err(format!(
                    "flash_crowd: nonsensical imbalance {} at t={}",
                    e.phase_b_imbalance,
                    e.timestamp.raw()
                ));
            }
            // max busy / mean busy can never exceed the worker count.
            if e.phase_b_imbalance > e.phase_b_workers as f64 + 1e-9 {
                return Err(format!(
                    "flash_crowd: imbalance {} exceeds worker count {} at t={}",
                    e.phase_b_imbalance,
                    e.phase_b_workers,
                    e.timestamp.raw()
                ));
            }
        }
        // With stealing on, the mean should sit well below the no-steal
        // worst case (= worker count). The bound is deliberately loose:
        // epochs are short, so scheduler noise dominates single epochs
        // and only the mean is meaningful.
        let mean =
            parallel.iter().map(|e| e.phase_b_imbalance).sum::<f64>() / parallel.len() as f64;
        let workers = parallel.iter().map(|e| e.phase_b_workers).max().unwrap_or(1);
        let bound = (0.75 * workers as f64).max(2.0);
        if mean > bound {
            return Err(format!(
                "flash_crowd: mean Phase-B imbalance {mean:.3} over {} parallel epochs \
                 exceeds the stealing bound {bound:.3} (workers = {workers})",
                parallel.len()
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// combinators
// ---------------------------------------------------------------------

/// A scenario combinator: overlays a [`DropoutWindow`] on any inner
/// scenario. The inner scenario generates and schedules everything as
/// usual; the overlay then discards measurements from dark sensors, so
/// event machinery composes with outage machinery without either
/// knowing about the other. Invariants are the inner scenario's, plus
/// the requirement that the outage actually silenced something.
pub struct DropoutOverlay {
    name: &'static str,
    inner: Box<dyn Scenario>,
    window: DropoutWindow,
    /// Measurements the outage swallowed (ground truth for the
    /// composite's own invariant).
    dropped: u64,
}

impl DropoutOverlay {
    /// Wraps `inner`, silencing sensors per `window`. `name` is the
    /// composite's registry name.
    pub fn new(name: &'static str, inner: Box<dyn Scenario>, window: DropoutWindow) -> Self {
        DropoutOverlay { name, inner, window, dropped: 0 }
    }

    /// The outage window in force.
    pub fn window(&self) -> DropoutWindow {
        self.window
    }
}

impl Scenario for DropoutOverlay {
    fn name(&self) -> &'static str {
        self.name
    }
    fn network(&self) -> &RoadNetwork {
        self.inner.network()
    }
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn duration(&self) -> u64 {
        self.inner.duration()
    }
    fn window_hint(&self) -> u64 {
        // The sliding window must ride out the outage, whatever the
        // inner scenario assumes.
        self.inner.window_hint().max(self.window.until.raw() - self.window.from.raw() + 10)
    }
    fn seed_timepoint(&self, obj: ObjectId, t: Timestamp) -> TimePoint {
        self.inner.seed_timepoint(obj, t)
    }
    fn tick(&mut self, t: Timestamp, out: &mut Vec<Measurement>) {
        self.inner.tick(t, out);
        let before = out.len();
        out.retain(|m| !self.window.drops(m.object, t));
        self.dropped += (before - out.len()) as u64;
    }
    fn check_invariants(&self, outcome: &ScenarioOutcome) -> Result<(), String> {
        self.inner.check_invariants(outcome)?;
        if self.dropped == 0 {
            return Err(format!("{}: the dropout window never silenced a sensor", self.name));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// evacuation_reroute
// ---------------------------------------------------------------------

/// An evacuation whose arterial escape routes (motorways and highways)
/// close mid-run: walkers must reroute onto the side streets, the old
/// hot corridors stop being crossed and decay out of the window, and
/// fresh ones form — maximal churn for the hotness expiry machinery.
pub struct EvacuationRerouteScenario {
    net: RoadNetwork,
    pop: Population,
    closed: ClosureSet,
    params: ScenarioParams,
    closure_at: u64,
    /// First tick by which every mover has had time to finish the link
    /// it was on when the closures landed.
    grace_until: u64,
    /// Movers seen on a closed link after the grace period, at a
    /// crossroad that still had an open exit (must stay zero).
    violations: usize,
}

impl EvacuationRerouteScenario {
    /// Builds the scenario: danger at the centroid, arterials close at
    /// 40% of the run.
    pub fn new(params: &ScenarioParams) -> Self {
        let net = generate(params.network);
        let danger = net.bounds().centroid();
        let pop = evacuation(&net, params.n, danger, params.seed.wrapping_add(1));
        let mut closed = ClosureSet::none(&net);
        for l in net.links() {
            if matches!(l.class, RoadClass::Motorway | RoadClass::Highway) {
                closed.close(l.id);
            }
        }
        let closure_at = params.duration * 2 / 5;
        // Longest link over the paper's 10 m displacement, plus slack.
        let max_link = (0..net.link_count())
            .map(|i| net.link_length(crate::network::LinkId(i as u32)))
            .fold(0.0f64, f64::max);
        let grace = (max_link / pop.params().displacement).ceil() as u64 + 2;
        EvacuationRerouteScenario {
            net,
            pop,
            closed,
            params: *params,
            closure_at,
            grace_until: closure_at + grace,
            violations: 0,
        }
    }

    /// The closure set applied at `closure_at`.
    pub fn closures(&self) -> &ClosureSet {
        &self.closed
    }

    /// The tick the closures land on.
    pub fn closure_at(&self) -> u64 {
        self.closure_at
    }
}

impl Scenario for EvacuationRerouteScenario {
    fn name(&self) -> &'static str {
        "evacuation_reroute"
    }
    fn network(&self) -> &RoadNetwork {
        &self.net
    }
    fn n(&self) -> usize {
        self.params.n
    }
    fn duration(&self) -> u64 {
        self.params.duration
    }
    fn seed_timepoint(&self, obj: ObjectId, t: Timestamp) -> TimePoint {
        self.pop.seed_timepoint(&self.net, obj, t)
    }
    fn tick(&mut self, t: Timestamp, out: &mut Vec<Measurement>) {
        let raw = t.raw();
        let closed = (raw >= self.closure_at).then_some(&self.closed);
        self.pop.tick_avoiding(&self.net, t, closed, out);
        if raw >= self.grace_until {
            // Ground truth: after the grace period no mover may still be
            // driving a closed road, unless it came through a crossroad
            // with no open exit at all.
            for i in 0..self.params.n {
                let obj = ObjectId(i as u64);
                if !self.pop.is_mover(obj) {
                    continue;
                }
                let link = self.pop.walker_link(obj);
                if !self.closed.is_closed(link) {
                    continue;
                }
                let l = self.net.link(link);
                let sealed = |node: NodeId| {
                    self.net.incident(node).iter().all(|&x| self.closed.is_closed(x))
                };
                if !sealed(l.a) && !sealed(l.b) {
                    self.violations += 1;
                }
            }
        }
    }
    fn check_invariants(&self, outcome: &ScenarioOutcome) -> Result<(), String> {
        require_discovery(self.name(), outcome)?;
        if self.closed.closed_count() == 0 {
            return Err("evacuation_reroute: nothing was closed".into());
        }
        if self.violations > 0 {
            return Err(format!(
                "evacuation_reroute: {} mover-ticks on closed links after the grace period",
                self.violations
            ));
        }
        // The pipeline must keep discovering after the reroute: some
        // post-grace epoch still scores. On large networks the longest
        // link can push the grace period to the end of the run, so the
        // checkpoint clamps to the final epoch — the pipeline must at
        // minimum survive the closures to the finish line.
        let last = outcome.per_epoch.last().ok_or("evacuation_reroute: no epochs observed")?;
        let check_from = self.grace_until.min(last.timestamp.raw());
        let recovered = outcome
            .per_epoch
            .iter()
            .any(|e| e.timestamp.raw() >= check_from && e.top_k_score > 0.0);
        if !recovered {
            return Err("evacuation_reroute: top-k never recovered after the closures".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// fault stories: mass_disconnect / reconnect_storm / slow_client_stall
// ---------------------------------------------------------------------

/// Which robustness story a [`FaultStoryScenario`] tells. All three
/// ride the sporting-event population (a converging crowd keeps one
/// corridor reliably hot, so fault effects are attributable) and
/// differ only in their declared [`FaultWindow`]s, their
/// [`RobustnessHint`], and the invariants checked afterwards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultStory {
    /// Half the fleet disconnects for longer than lease + grace: the
    /// victims must be ejected within the lease bound, the hot paths
    /// must survive the storm, and the returning clients must be
    /// re-admitted.
    MassDisconnect,
    /// The whole fleet goes silent for just over a lease, then
    /// reconnects at once: a reconnect storm that must exercise
    /// admission control and still recover the pre-storm top path.
    ReconnectStorm,
    /// A quarter of the fleet stalls silently for most of the run:
    /// the stalled clients must be ejected on schedule while service
    /// for the rest never degrades to an empty top-k.
    SlowClientStall,
}

/// A converging-crowd workload with declared fault windows and a
/// robustness hint, one per [`FaultStory`].
pub struct FaultStoryScenario {
    net: RoadNetwork,
    pop: Population,
    params: ScenarioParams,
    story: FaultStory,
    windows: Vec<FaultWindow>,
    hint: RobustnessHint,
}

impl FaultStoryScenario {
    /// Builds the scenario. Window placement straddles the run
    /// midpoint so a restart-parity check (restore at `duration / 2`)
    /// lands mid-storm.
    pub fn new(params: &ScenarioParams, story: FaultStory) -> Self {
        let net = generate(params.network);
        let venue = nearest_node(&net, net.bounds().centroid());
        let pop = sporting_event(&net, params.n, venue, params.seed.wrapping_add(1));
        let d = params.duration;
        let n = params.n;
        let (windows, hint) = match story {
            FaultStory::MassDisconnect => (
                vec![FaultWindow {
                    kind: FaultKind::Disconnect,
                    from: Timestamp(d * 9 / 20),
                    until: Timestamp(d * 13 / 20),
                    fraction: 0.5,
                    salt: 0xD15C,
                }],
                RobustnessHint {
                    lease: 12,
                    grace: 6,
                    queue_cap: 0,
                    policy: AdmissionPolicy::Reject,
                    degrade_threshold: 0,
                },
            ),
            FaultStory::ReconnectStorm => (
                vec![FaultWindow {
                    kind: FaultKind::Disconnect,
                    from: Timestamp(d * 9 / 20),
                    until: Timestamp(d * 11 / 20),
                    fraction: 1.0,
                    salt: 0x5707,
                }],
                RobustnessHint {
                    // Lease shorter than the outage so every session
                    // drops; grace longer than the outage so nobody is
                    // ejected and the entire fleet *reconnects* at once.
                    lease: 8,
                    grace: d / 10 + 10,
                    queue_cap: (n / 4).max(64),
                    policy: AdmissionPolicy::ShedOldest,
                    degrade_threshold: (n / 6).max(48),
                },
            ),
            FaultStory::SlowClientStall => (
                vec![FaultWindow {
                    kind: FaultKind::Stall,
                    from: Timestamp(d * 2 / 5),
                    until: Timestamp(d * 4 / 5),
                    fraction: 0.25,
                    salt: 0x51A1,
                }],
                RobustnessHint {
                    lease: 12,
                    grace: 6,
                    queue_cap: (n / 5).max(48),
                    policy: AdmissionPolicy::EjectSlowest,
                    degrade_threshold: 0,
                },
            ),
        };
        FaultStoryScenario { net, pop, params: *params, story, windows, hint }
    }

    fn story_name(&self) -> &'static str {
        match self.story {
            FaultStory::MassDisconnect => "mass_disconnect",
            FaultStory::ReconnectStorm => "reconnect_storm",
            FaultStory::SlowClientStall => "slow_client_stall",
        }
    }

    /// Cumulative counter value at the last epoch strictly before `t`
    /// (zero when no epoch precedes `t`).
    fn cum_before(outcome: &ScenarioOutcome, t: Timestamp, f: fn(&EpochSample) -> u64) -> u64 {
        outcome.per_epoch.iter().rfind(|e| e.timestamp < t).map(f).unwrap_or(0)
    }

    /// The victims must be ejected within `lease + grace` of the
    /// window opening (plus epoch-boundary slack).
    fn check_ejection_bound(&self, outcome: &ScenarioOutcome) -> Result<(), String> {
        let name = self.story_name();
        let w = self.windows[0];
        let base = Self::cum_before(outcome, w.from, |e| e.session_ejections);
        let first = outcome
            .per_epoch
            .iter()
            .find(|e| e.session_ejections > base)
            .ok_or_else(|| format!("{name}: no session was ever ejected"))?;
        let bound = w.from.raw() + self.hint.lease + self.hint.grace + 15;
        if first.timestamp.raw() > bound {
            return Err(format!(
                "{name}: first ejection at t={} but the lease bound is t={bound}",
                first.timestamp.raw()
            ));
        }
        Ok(())
    }
}

impl Scenario for FaultStoryScenario {
    fn name(&self) -> &'static str {
        match self.story {
            FaultStory::MassDisconnect => "mass_disconnect",
            FaultStory::ReconnectStorm => "reconnect_storm",
            FaultStory::SlowClientStall => "slow_client_stall",
        }
    }
    fn network(&self) -> &RoadNetwork {
        &self.net
    }
    fn n(&self) -> usize {
        self.params.n
    }
    fn duration(&self) -> u64 {
        self.params.duration
    }
    fn window_hint(&self) -> u64 {
        // The hotness window must outlast the longest fault window so
        // the hot paths survive the silence and recover in place.
        let longest = self.windows.iter().map(|w| w.until.raw() - w.from.raw()).max().unwrap_or(0);
        match self.story {
            // The stall runs for 40% of the run but 75% of the fleet
            // keeps the corridor hot; the default window suffices.
            FaultStory::SlowClientStall => 40,
            _ => (longest + 10).max(40),
        }
    }
    fn seed_timepoint(&self, obj: ObjectId, t: Timestamp) -> TimePoint {
        self.pop.seed_timepoint(&self.net, obj, t)
    }
    fn tick(&mut self, t: Timestamp, out: &mut Vec<Measurement>) {
        // Faults are declared, not baked into the stream: the driver
        // suppresses measurements, so the raw stream stays identical
        // whether or not injection is enabled.
        self.pop.tick(&self.net, t, out);
    }
    fn fault_windows(&self) -> Vec<FaultWindow> {
        self.windows.clone()
    }
    fn robustness_hint(&self) -> Option<RobustnessHint> {
        Some(self.hint)
    }
    fn check_invariants(&self, outcome: &ScenarioOutcome) -> Result<(), String> {
        let name = self.story_name();
        require_discovery(name, outcome)?;
        let last =
            outcome.per_epoch.last().ok_or_else(|| format!("{name}: no epochs observed"))?.clone();
        if last.session_connects == 0 {
            return Err(format!(
                "{name}: no session ever connected — was the robustness hint applied?"
            ));
        }
        let w = self.windows[0];
        match self.story {
            FaultStory::MassDisconnect => {
                self.check_ejection_bound(outcome)?;
                // No hot-path corruption mid-storm: the surviving half
                // keeps the corridor scored through the whole window.
                for e in outcome.per_epoch.iter().filter(|e| w.active(e.timestamp)) {
                    if e.top_k_score <= 0.0 {
                        return Err(format!(
                            "{name}: top-k score collapsed mid-storm at t={}",
                            e.timestamp.raw()
                        ));
                    }
                }
                // Returning clients are re-admitted (fresh connects or
                // reconnects after the window closes).
                let base = Self::cum_before(outcome, w.until, |e| {
                    e.session_connects + e.session_reconnects
                });
                if last.session_connects + last.session_reconnects <= base {
                    return Err(format!("{name}: no client was re-admitted after the storm"));
                }
            }
            FaultStory::ReconnectStorm => {
                // The whole fleet dropped and came back: reconnects
                // must rise after the window closes.
                let base = Self::cum_before(outcome, w.until, |e| e.session_reconnects);
                if last.session_reconnects <= base {
                    return Err(format!("{name}: no reconnect after the storm"));
                }
                // The storm must actually stress admission: something
                // was turned away or some epoch degraded.
                if last.turned_away + last.degraded_epochs == 0 {
                    return Err(format!("{name}: admission control never engaged"));
                }
                // Recovery: the pre-storm top path is hot again within
                // a window of the storm ending.
                let pre = outcome
                    .per_epoch
                    .iter()
                    .rfind(|e| e.timestamp < w.from && !e.top_ids.is_empty())
                    .ok_or_else(|| format!("{name}: no pre-storm top-k to recover"))?;
                let target = pre.top_ids[0];
                let deadline = w.until.raw() + self.window_hint();
                let recovered = outcome.per_epoch.iter().any(|e| {
                    e.timestamp >= w.until
                        && e.timestamp.raw() <= deadline
                        && e.top_ids.contains(&target)
                });
                if !recovered {
                    return Err(format!(
                        "{name}: pre-storm top path {target} not hot again by t={deadline}"
                    ));
                }
            }
            FaultStory::SlowClientStall => {
                self.check_ejection_bound(outcome)?;
                // Service for the active 75% never collapses once the
                // stall begins.
                for e in outcome.per_epoch.iter().filter(|e| e.timestamp >= w.from) {
                    if e.top_k_score <= 0.0 {
                        return Err(format!(
                            "{name}: top-k score collapsed during the stall at t={}",
                            e.timestamp.raw()
                        ));
                    }
                }
                // Once the stall lifts the ejected clients re-admit as
                // fresh sessions.
                let base = Self::cum_before(outcome, w.until, |e| e.session_connects);
                if last.session_connects <= base {
                    return Err(format!("{name}: stalled clients never re-admitted"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_all_scenarios_with_unique_names() {
        assert!(REGISTRY.len() >= 10);
        let mut names: Vec<&str> = REGISTRY.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len(), "duplicate scenario names");
        for required in [
            "sporting_event",
            "evacuation",
            "sensor_dropout",
            "rush_hour_surge",
            "flash_crowd",
            "evacuation_reroute",
            "surge_dropout",
            "mass_disconnect",
            "reconnect_storm",
            "slow_client_stall",
        ] {
            assert!(spec(required).is_some(), "missing scenario {required}");
        }
        assert!(spec("no_such_scenario").is_none());
    }

    #[test]
    fn dropout_overlay_silences_the_windowed_sensors_and_delegates() {
        let params = ScenarioParams { n: 90, ..ScenarioParams::quick(13) };
        let mut composite = build("surge_dropout", &params).expect("registered composite");
        assert_eq!(composite.name(), "surge_dropout");
        assert_eq!(composite.n(), 90);
        let mut bare = RushHourSurgeScenario::new(&params);
        let window = DropoutWindow::new(
            Timestamp(params.duration / 2),
            Timestamp(params.duration / 2 + params.duration / 8),
            3,
        );
        let (mut out_c, mut out_b) = (Vec::new(), Vec::new());
        let mut dropped = 0usize;
        for t in 1..=params.duration {
            composite.tick(Timestamp(t), &mut out_c);
            bare.tick(Timestamp(t), &mut out_b);
            // The composite's stream is exactly the bare stream minus
            // the dark sensors.
            let expected: Vec<_> =
                out_b.iter().filter(|m| !window.drops(m.object, Timestamp(t))).collect();
            dropped += out_b.len() - expected.len();
            assert_eq!(out_c.len(), expected.len(), "tick {t}");
            for (c, b) in out_c.iter().zip(expected) {
                assert_eq!(c.object, b.object);
                assert_eq!(c.truth, b.truth);
            }
        }
        assert!(dropped > 0, "the outage never fired at this scale");
        // The sliding-window hint covers the outage.
        assert!(composite.window_hint() > params.duration / 8);
    }

    #[test]
    fn every_registered_scenario_builds_and_ticks() {
        let params = ScenarioParams { n: 60, ..ScenarioParams::quick(5) };
        let mut out = Vec::new();
        for s in REGISTRY {
            let mut scenario = (s.build)(&params);
            assert_eq!(scenario.name(), s.name);
            assert_eq!(scenario.n(), 60);
            let mut total = 0usize;
            for t in 1..=30u64 {
                scenario.tick(Timestamp(t), &mut out);
                total += out.len();
            }
            assert!(total > 0, "{} emitted nothing", s.name);
            let seed = scenario.seed_timepoint(ObjectId(0), Timestamp(0));
            assert!(scenario.network().bounds().expand(1.0).contains(&seed.p));
        }
    }

    #[test]
    fn scenario_streams_are_deterministic_per_seed() {
        let params = ScenarioParams { n: 50, ..ScenarioParams::quick(77) };
        for s in REGISTRY {
            let run = || {
                let mut scenario = (s.build)(&params);
                let mut out = Vec::new();
                let mut all = Vec::new();
                for t in 1..=40u64 {
                    scenario.tick(Timestamp(t), &mut out);
                    all.extend(out.iter().map(|m| (m.object.0, m.observed.p, m.truth)));
                }
                all
            };
            assert_eq!(run(), run(), "{} not deterministic", s.name);
        }
    }

    #[test]
    fn rush_hour_surge_raises_and_releases_load() {
        let params = ScenarioParams { n: 200, ..ScenarioParams::quick(9) };
        let mut s = RushHourSurgeScenario::new(&params);
        let base = s.base_movers;
        let mut out = Vec::new();
        let mut mid_peak = 0usize;
        for t in 1..=params.duration {
            s.tick(Timestamp(t), &mut out);
            let mid = params.duration / 2;
            if t.abs_diff(mid) < 10 {
                mid_peak = mid_peak.max(s.pop.movers());
            }
        }
        assert!(mid_peak > base, "no surge at midpoint: {mid_peak} <= {base}");
        assert!(s.peak_movers > base);
        // After the surge the mover count falls back to the base level.
        assert_eq!(s.pop.movers(), base);
    }

    #[test]
    fn hub_nodes_are_the_heaviest_crossroads() {
        let net = generate(NetworkParams::tiny(3));
        let hubs = RushHourSurgeScenario::hub_nodes(&net, 3);
        assert_eq!(hubs.len(), 3);
        let weight = |id: NodeId| -> f64 {
            net.incident(id).iter().map(|&l| net.link(l).class.weight()).sum()
        };
        let min_hub = hubs.iter().map(|&h| weight(h)).fold(f64::INFINITY, f64::min);
        for n in net.nodes() {
            if !hubs.contains(&n.id) {
                assert!(weight(n.id) <= min_hub + 1e-9);
            }
        }
    }

    #[test]
    fn evacuation_reroute_closes_arterials_and_tracks_no_violations() {
        let params = ScenarioParams { n: 120, ..ScenarioParams::quick(11) };
        let mut s = EvacuationRerouteScenario::new(&params);
        assert!(s.closures().closed_count() > 0, "no arterials to close");
        let mut out = Vec::new();
        for t in 1..=params.duration {
            s.tick(Timestamp(t), &mut out);
        }
        assert_eq!(s.violations, 0, "movers kept driving closed roads");
    }

    #[test]
    fn poisson_sampler_tracks_the_rate() {
        let mut rng = SmallRng::seed_from_u64(4);
        for &lambda in &[0.0, 2.5, 12.0, 80.0] {
            let n = 4000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "poisson mean {mean} far from lambda {lambda}"
            );
        }
    }

    #[test]
    fn fault_window_membership_is_stable_and_tracks_the_fraction() {
        let w = FaultWindow {
            kind: FaultKind::Disconnect,
            from: Timestamp(10),
            until: Timestamp(20),
            fraction: 0.5,
            salt: 0xD15C,
        };
        assert!(!w.active(Timestamp(9)));
        assert!(w.active(Timestamp(10)));
        assert!(w.active(Timestamp(19)));
        assert!(!w.active(Timestamp(20)));
        // Membership is stable per (seed, object) and roughly tracks
        // the declared fraction.
        let n = 4000u64;
        let hit = (0..n).filter(|&i| w.selects(42, ObjectId(i))).count();
        assert!((hit as f64 / n as f64 - 0.5).abs() < 0.05, "hit rate {hit}/{n}");
        for i in 0..64 {
            assert_eq!(w.selects(42, ObjectId(i)), w.selects(42, ObjectId(i)));
        }
        // Different seeds pick different victim sets.
        let other = (0..n).filter(|&i| w.selects(43, ObjectId(i))).count();
        let overlap =
            (0..n).filter(|&i| w.selects(42, ObjectId(i)) && w.selects(43, ObjectId(i))).count();
        assert!(overlap < hit.min(other), "seeds 42 and 43 picked identical victims");
        // Edge fractions are exact.
        let all = FaultWindow { fraction: 1.0, ..w };
        let none = FaultWindow { fraction: 0.0, ..w };
        assert!((0..100).all(|i| all.selects(7, ObjectId(i))));
        assert!((0..100).all(|i| !none.selects(7, ObjectId(i))));
    }

    #[test]
    fn fault_scenarios_declare_windows_and_hints() {
        let params = ScenarioParams::quick(3);
        for name in ["mass_disconnect", "reconnect_storm", "slow_client_stall"] {
            let s = build(name, &params).expect("registered");
            let windows = s.fault_windows();
            assert!(!windows.is_empty(), "{name} declares no faults");
            let hint = s.robustness_hint().expect("fault scenarios hint their config");
            assert!(hint.lease > 0, "{name} must turn sessions on");
            for w in &windows {
                assert!(w.from < w.until, "{name}: empty fault window");
                assert!(w.until.raw() < params.duration, "{name}: window outlives the run");
                // The midpoint restore used by restart-parity checks
                // lands inside the first window (mid-storm restore).
                assert!(
                    w.from.raw() <= params.duration / 2 && params.duration / 2 < w.until.raw(),
                    "{name}: window [{}, {}) misses the midpoint restore",
                    w.from.raw(),
                    w.until.raw()
                );
                // The hotness window must cover disconnect outages so
                // paths survive to recover.
                if w.kind == FaultKind::Disconnect {
                    assert!(s.window_hint() > w.until.raw() - w.from.raw());
                }
            }
        }
        // Fault-free scenarios keep the defaults.
        let plain = build("sporting_event", &params).expect("registered");
        assert!(plain.fault_windows().is_empty());
        assert!(plain.robustness_hint().is_none());
    }

    #[test]
    fn outcome_epoch_lookup() {
        let sample = |t: u64| EpochSample {
            timestamp: Timestamp(t),
            index_size: 1,
            top_k_score: 1.0,
            top_ids: vec![7],
            top_hotness: Some(2),
            sessions_healthy: 0,
            sessions_dropped: 0,
            session_connects: 0,
            session_reconnects: 0,
            session_ejections: 0,
            turned_away: 0,
            degraded_epochs: 0,
            phase_b_workers: 1,
            phase_b_deferred: 0,
            phase_b_stolen: 0,
            phase_b_imbalance: 1.0,
        };
        let outcome = ScenarioOutcome {
            per_epoch: vec![sample(5), sample(10), sample(15)],
            final_top_k: vec![(7, 2)],
            measurements: 10,
            reports: 3,
        };
        assert_eq!(outcome.epoch_at(Timestamp(9)).unwrap().timestamp, Timestamp(10));
        assert_eq!(outcome.epoch_at(Timestamp(15)).unwrap().timestamp, Timestamp(15));
        assert!(outcome.epoch_at(Timestamp(16)).is_none());
    }
}
