//! # hotpath-netsim
//!
//! The workload substrate of the EDBT 2008 evaluation: a synthetic
//! Athens-like road network (1125 nodes / 1831 links / 250 km² with four
//! weighted road classes) and the moving-object generator that walks it
//! (weighted link choice, agility `alpha`, displacement `s`, uniform
//! white measurement noise `err`).
//!
//! The hot-path algorithms never see the network — they only receive
//! noisy timepoint streams — exactly as in the paper's setup.
//!
//! ```
//! use hotpath_netsim::network::{generate, NetworkParams};
//! use hotpath_netsim::mobility::{Population, PopulationParams};
//! use hotpath_core::time::Timestamp;
//!
//! let net = generate(NetworkParams::tiny(42));
//! let mut pop = Population::new(&net, PopulationParams::paper_defaults(100, 42));
//! let measurements = pop.tick_collect(&net, Timestamp(1));
//! assert!(measurements.len() <= 100);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod mobility;
pub mod network;
pub mod scenario;
pub mod scenarios;
