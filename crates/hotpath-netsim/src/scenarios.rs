//! Motivating-scenario workloads (Section 1 of the paper).
//!
//! The introduction motivates hot-path discovery with two applications:
//! targeted advertising around a major **sporting event** (crowds
//! converge on a venue along similar routes) and **emergency
//! evacuation** (residents flee a danger zone along popular escape
//! routes). These builders configure populations matching those
//! stories; the examples and integration tests exercise them.

use crate::mobility::{ChoicePolicy, Population, PopulationParams};
use crate::network::{NodeId, RoadNetwork};
use hotpath_core::geometry::Point;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;

/// A sporting-event crowd: `n` objects drifting toward `venue`.
///
/// Walkers prefer links that reduce their distance to the venue, scaled
/// by road weight — so they funnel onto arterials leading there, which
/// is precisely the pattern targeted advertising wants to catch.
pub fn sporting_event(net: &RoadNetwork, n: usize, venue: NodeId, seed: u64) -> Population {
    let params = PopulationParams {
        policy: ChoicePolicy::Toward(net.node(venue).pos),
        // Most of the crowd is walking toward the gates.
        agility: 0.5,
        ..PopulationParams::paper_defaults(n, seed)
    };
    Population::new(net, params)
}

/// An evacuation crowd: `n` objects fleeing the point `danger`.
///
/// Walkers prefer links that increase their distance from the danger
/// zone; authorities monitoring hot paths see the popular escape routes
/// emerge in the top-k.
pub fn evacuation(net: &RoadNetwork, n: usize, danger: Point, seed: u64) -> Population {
    let params = PopulationParams {
        policy: ChoicePolicy::Away(danger),
        // Evacuations are hurried: everyone moves nearly every timestamp.
        agility: 0.6,
        ..PopulationParams::paper_defaults(n, seed)
    };
    Population::new(net, params)
}

/// A sensor-dropout window: between `from` (inclusive) and `until`
/// (exclusive) every `stride`-th object's sensor goes dark and reports
/// nothing. Hot-path discovery should ride it out — crossings recorded
/// before the outage stay in the sliding window, so the top-k keeps
/// naming the popular corridors while a slice of the fleet is silent.
#[derive(Clone, Copy, Debug)]
pub struct DropoutWindow {
    /// First dark timestamp.
    pub from: Timestamp,
    /// First timestamp with sensors back online.
    pub until: Timestamp,
    /// Every `stride`-th object (by id) drops out; `1` silences everyone.
    pub stride: u64,
}

impl DropoutWindow {
    /// Creates a window; `stride` must be positive.
    pub fn new(from: Timestamp, until: Timestamp, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(from <= until, "window must not be inverted");
        DropoutWindow { from, until, stride }
    }

    /// True while the outage is in force at `t`.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.from <= t && t < self.until
    }

    /// True when `obj`'s sensor is dark at `t` (its measurement must be
    /// discarded before it reaches the client filter).
    pub fn drops(&self, obj: ObjectId, t: Timestamp) -> bool {
        obj.0.is_multiple_of(self.stride) && self.contains(t)
    }
}

/// A sensor-dropout scenario: a sporting-event crowd (so hot corridors
/// form) plus a validated [`DropoutWindow`] silencing every `stride`-th
/// sensor over `[from, until)`. The driver consults
/// [`DropoutWindow::drops`] per measurement; integration tests assert
/// the top-k stays stable across the outage.
pub fn sensor_dropout(
    net: &RoadNetwork,
    n: usize,
    venue: NodeId,
    seed: u64,
    from: Timestamp,
    until: Timestamp,
    stride: u64,
) -> (Population, DropoutWindow) {
    (sporting_event(net, n, venue, seed), DropoutWindow::new(from, until, stride))
}

/// The node closest to a point (e.g. to place a venue near the center).
pub fn nearest_node(net: &RoadNetwork, p: Point) -> NodeId {
    net.nodes()
        .iter()
        .min_by(|a, b| a.pos.dist_l2(&p).total_cmp(&b.pos.dist_l2(&p)))
        .expect("non-empty network")
        .id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{generate, NetworkParams};
    use hotpath_core::time::Timestamp;

    #[test]
    fn nearest_node_is_nearest() {
        let net = generate(NetworkParams::tiny(1));
        let c = net.bounds().centroid();
        let id = nearest_node(&net, c);
        let d = net.node(id).pos.dist_l2(&c);
        for n in net.nodes() {
            assert!(d <= n.pos.dist_l2(&c) + 1e-9);
        }
    }

    #[test]
    fn sporting_event_crowd_converges() {
        let net = generate(NetworkParams::tiny(2));
        let venue = nearest_node(&net, net.bounds().centroid());
        let venue_pos = net.node(venue).pos;
        let mut pop = sporting_event(&net, 100, venue, 3);
        let mut out = Vec::new();
        let mut dist_sum_first = 0.0;
        let mut dist_sum_last = 0.0;
        for t in 1..=400u64 {
            pop.tick(&net, Timestamp(t), &mut out);
            let s: f64 = out.iter().map(|m| m.truth.dist_l2(&venue_pos)).sum();
            let c = out.len().max(1) as f64;
            if t <= 20 {
                dist_sum_first += s / c;
            }
            if t > 380 {
                dist_sum_last += s / c;
            }
        }
        assert!(
            dist_sum_last < dist_sum_first * 0.8,
            "crowd did not converge: first {dist_sum_first}, last {dist_sum_last}"
        );
    }

    #[test]
    fn evacuation_crowd_disperses() {
        let net = generate(NetworkParams::tiny(4));
        let danger = net.bounds().centroid();
        let mut pop = evacuation(&net, 100, danger, 5);
        let mut out = Vec::new();
        let mut first = 0.0;
        let mut last = 0.0;
        for t in 1..=300u64 {
            pop.tick(&net, Timestamp(t), &mut out);
            let s: f64 = out.iter().map(|m| m.truth.dist_l2(&danger)).sum();
            let c = out.len().max(1) as f64;
            if t <= 20 {
                first += s / c;
            }
            if t > 280 {
                last += s / c;
            }
        }
        assert!(last > first, "crowd did not flee: first {first}, last {last}");
    }

    #[test]
    fn dropout_window_silences_the_right_objects() {
        let w = DropoutWindow::new(Timestamp(10), Timestamp(20), 3);
        // In force only inside [10, 20).
        assert!(!w.contains(Timestamp(9)));
        assert!(w.contains(Timestamp(10)));
        assert!(w.contains(Timestamp(19)));
        assert!(!w.contains(Timestamp(20)));
        // Objects 0, 3, 6, ... drop; the rest keep reporting.
        assert!(w.drops(ObjectId(0), Timestamp(15)));
        assert!(w.drops(ObjectId(3), Timestamp(15)));
        assert!(!w.drops(ObjectId(1), Timestamp(15)));
        assert!(!w.drops(ObjectId(3), Timestamp(25)));
    }

    #[test]
    fn sensor_dropout_builds_window_and_converging_crowd() {
        let net = generate(NetworkParams::tiny(8));
        let venue = nearest_node(&net, net.bounds().centroid());
        let (pop, w) = sensor_dropout(&net, 10, venue, 9, Timestamp(5), Timestamp(10), 2);
        assert!(w.drops(ObjectId(4), Timestamp(7)));
        assert!(!w.drops(ObjectId(5), Timestamp(7)));
        // Same crowd profile as the sporting event (converging walkers).
        assert_eq!(pop.params().agility, sporting_event(&net, 10, venue, 9).params().agility);
    }

    #[test]
    fn evacuation_is_hasty() {
        let net = generate(NetworkParams::tiny(6));
        let pop = evacuation(&net, 10, net.bounds().centroid(), 7);
        assert!(pop.params().agility > 0.5);
    }
}
