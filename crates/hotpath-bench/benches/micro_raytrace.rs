//! RayTrace micro-bench: the O(1)-per-point claim of Section 4. Cost
//! per observation must stay flat across motion patterns and stream
//! lengths.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use hotpath_core::geometry::{Point, TimePoint};
use hotpath_core::raytrace::RayTraceFilter;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;

fn stream(kind: &str, len: u64) -> Vec<TimePoint> {
    (1..=len)
        .map(|t| {
            let p = match kind {
                "straight" => Point::new(10.0 * t as f64, 0.0),
                "wavy" => Point::new(10.0 * t as f64, (t as f64 * 0.3).sin() * 4.0),
                _ => {
                    // Right-angle turns every 40 points.
                    let leg = (t / 40) % 2;
                    if leg == 0 {
                        Point::new(10.0 * t as f64, (t / 80) as f64 * 400.0)
                    } else {
                        Point::new(10.0 * (40 * (t / 40)) as f64, 10.0 * (t % 40) as f64)
                    }
                }
            };
            TimePoint::new(p, Timestamp(t))
        })
        .collect()
}

fn bench_observe(c: &mut Criterion) {
    let mut g = c.benchmark_group("raytrace_observe");
    for kind in ["straight", "wavy", "turns"] {
        for len in [1_000u64, 10_000] {
            let points = stream(kind, len);
            g.throughput(Throughput::Elements(len));
            g.bench_with_input(BenchmarkId::new(kind, len), &points, |b, pts| {
                b.iter_batched(
                    || {
                        RayTraceFilter::new(
                            ObjectId(0),
                            TimePoint::new(Point::ORIGIN, Timestamp(0)),
                            5.0,
                        )
                    },
                    |mut f| {
                        for tp in pts {
                            if let Some(s) = f.observe(*tp) {
                                let _ = f.receive_endpoint(TimePoint::new(s.fsa.centroid(), s.te));
                            }
                        }
                        f
                    },
                    BatchSize::SmallInput,
                );
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
