//! Ablation bench: Algorithm 2's FSA-overlap machinery (stab boosts +
//! max-depth vertex generation) vs naive own-centroid vertices. Quality
//! deltas are printed by `experiments ablate`; Criterion tracks the
//! processing-cost side of the trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_bench::Scale;
use hotpath_core::strategy::OverlapPolicy;
use hotpath_sim::simulation::{run, SimulationParams};

fn bench_overlap_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap_ablation");
    g.sample_size(10);
    for (tag, overlap) in [("full", OverlapPolicy::Full), ("own", OverlapPolicy::Own)] {
        let params = SimulationParams { n: 500, run_dp: false, overlap, ..Scale::Quick.base(2012) };
        g.bench_with_input(BenchmarkId::new("simulate", tag), &params, |b, p| {
            b.iter(|| run(p.clone()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_overlap_ablation);
criterion_main!(benches);
