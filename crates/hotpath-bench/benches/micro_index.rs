//! MotionPath grid-index micro-bench (Section 5.1): expected-constant
//! insert/delete and cheap range queries.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::index::MotionPathIndex;

fn filled(n: usize) -> MotionPathIndex {
    let mut idx = MotionPathIndex::new(250.0, 1e-3);
    for i in 0..n {
        let x = (i % 100) as f64 * 100.0;
        let y = (i / 100) as f64 * 100.0;
        idx.insert(Point::new(x, y), Point::new(x + 80.0, y + 10.0));
    }
    idx
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("motionpath_index");
    for n in [1_000usize, 10_000, 50_000] {
        g.bench_with_input(BenchmarkId::new("insert_remove", n), &n, |b, &n| {
            b.iter_batched(
                || filled(n),
                |mut idx| {
                    let (id, _) = idx.insert(Point::new(5.0, 5.0), Point::new(55.0, 5.0));
                    idx.remove(id);
                    idx
                },
                BatchSize::LargeInput,
            );
        });
        let idx = filled(n);
        let fsa = Rect::new(Point::new(480.0, 80.0), Point::new(620.0, 220.0));
        g.bench_with_input(BenchmarkId::new("case1_query", n), &idx, |b, idx| {
            b.iter(|| idx.paths_from_into(&Point::new(500.0, 100.0), &fsa));
        });
        g.bench_with_input(BenchmarkId::new("case2_query", n), &idx, |b, idx| {
            b.iter(|| idx.end_vertices_in(&fsa));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
