//! Index-structure ablation: the paper's grid (Section 5.1) vs a
//! hand-rolled Guttman R-tree for the endpoint workloads the SinglePath
//! strategy generates (inserts, FSA-sized range queries, deletions).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::index::{EndKind, EndpointGrid, Entry, RTree};
use hotpath_core::motion_path::PathId;

fn endpoints(n: usize) -> Vec<Point> {
    (0..n).map(|i| Point::new(((i * 37) % 15_000) as f64, ((i * 61) % 15_000) as f64)).collect()
}

fn filled_grid(pts: &[Point]) -> EndpointGrid {
    let mut g = EndpointGrid::new(250.0);
    for (i, p) in pts.iter().enumerate() {
        g.insert(Entry { endpoint: *p, path: PathId(i as u64), other: *p, kind: EndKind::End });
    }
    g
}

fn filled_rtree(pts: &[Point]) -> RTree<u64> {
    let mut t = RTree::new();
    for (i, p) in pts.iter().enumerate() {
        t.insert(*p, i as u64);
    }
    t
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_backend");
    for n in [1_000usize, 10_000, 100_000] {
        let pts = endpoints(n);
        // FSA-sized query box (2 eps = 20 m).
        let fsa = Rect::new(Point::new(7_000.0, 7_000.0), Point::new(7_020.0, 7_020.0));

        g.bench_with_input(BenchmarkId::new("grid_query", n), &pts, |b, pts| {
            let grid = filled_grid(pts);
            b.iter(|| grid.query(&fsa).len());
        });
        g.bench_with_input(BenchmarkId::new("rtree_query", n), &pts, |b, pts| {
            let tree = filled_rtree(pts);
            b.iter(|| tree.query(&fsa).len());
        });

        g.bench_with_input(BenchmarkId::new("grid_insert_remove", n), &pts, |b, pts| {
            b.iter_batched(
                || filled_grid(pts),
                |mut grid| {
                    let e = Entry {
                        endpoint: Point::new(1.0, 1.0),
                        path: PathId(u64::MAX),
                        other: Point::new(1.0, 1.0),
                        kind: EndKind::End,
                    };
                    grid.insert(e);
                    grid.remove(&Point::new(1.0, 1.0), PathId(u64::MAX), EndKind::End);
                    grid
                },
                BatchSize::LargeInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("rtree_insert_remove", n), &pts, |b, pts| {
            b.iter_batched(
                || filled_rtree(pts),
                |mut tree| {
                    tree.insert(Point::new(1.0, 1.0), u64::MAX);
                    tree.remove(Point::new(1.0, 1.0), &u64::MAX);
                    tree
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
