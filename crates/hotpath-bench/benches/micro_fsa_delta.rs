//! Incremental FSA-overlap maintenance vs per-epoch full rebuild.
//!
//! `FsaCache::update` applies one epoch's add/move/remove delta to the
//! retained grid; `FsaSet::build` re-rasterizes the whole batch. The
//! workload models the steady state the coordinator sees: most objects
//! report again with a small displacement (usually inside the same grid
//! cell), a small fraction churns in and out per epoch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::strategy::{FsaCache, FsaSet};

const CELL: f64 = 20.0;

/// The batch for `epoch`: `n` objects drifting 0.3/epoch diagonally
/// (well under the 20.0 cell edge, so most moves stay in-cell), with
/// 1/64 of the id space rotating out and a fresh id range rotating in.
fn batch(n: u64, epoch: u64) -> Vec<(u64, Rect)> {
    let drift = epoch as f64 * 0.3;
    (0..n)
        .map(|i| {
            // Rotate ~1.6% of ids per epoch: object `i` is replaced by
            // `i + n` whenever its lane matches the epoch phase.
            let id = if i % 64 == epoch % 64 { i + n } else { i };
            let x = ((i as f64 * 37.0) + drift) % 5_000.0;
            let y = ((i as f64 * 53.0) + drift) % 5_000.0;
            (id, Rect::new(Point::new(x, y), Point::new(x + 20.0, y + 20.0)))
        })
        .collect()
}

fn bench_fsa_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("fsa_delta");
    for n in [1_000u64, 10_000] {
        // Full rebuild of each epoch's batch — the pre-incremental
        // per-epoch cost, kept measured as the comparison point.
        g.bench_with_input(BenchmarkId::new("full_rebuild", n), &n, |b, &n| {
            let mut epoch = 0u64;
            b.iter(|| {
                epoch += 1;
                let rects: Vec<Rect> = batch(n, epoch).into_iter().map(|(_, r)| r).collect();
                FsaSet::build(rects, CELL)
            });
        });
        // Steady-state incremental: one warmed cache absorbs each
        // epoch's delta (release builds skip the debug oracle).
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            let mut cache = FsaCache::new(CELL);
            let mut epoch = 0u64;
            cache.update(batch(n, epoch));
            b.iter(|| {
                epoch += 1;
                cache.update(batch(n, epoch)).len()
            });
        });
        // The same delta with the batch materialization hoisted out,
        // isolating pure grid-maintenance cost from workload synthesis.
        g.bench_with_input(BenchmarkId::new("incremental_steady", n), &n, |b, &n| {
            let mut cache = FsaCache::new(CELL);
            let a = batch(n, 0);
            let bb = batch(n, 1);
            cache.update(a.iter().copied());
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let src = if flip { &bb } else { &a };
                cache.update(src.iter().copied()).len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fsa_delta);
criterion_main!(benches);
