//! Uncertainty micro-bench (Section 4.1): the bisection solver vs the
//! precomputed-table fast path the paper recommends.

use criterion::{criterion_group, criterion_main, Criterion};
use hotpath_core::uncertainty::{half_width_exact, FallbackPolicy, ToleranceTable};

fn bench_tolerance(c: &mut Criterion) {
    let mut g = c.benchmark_group("tolerance_interval");
    g.bench_function("bisection_exact", |b| {
        let mut sigma = 0.5;
        b.iter(|| {
            sigma = if sigma > 4.0 { 0.5 } else { sigma + 0.1 };
            half_width_exact(10.0, 0.05, sigma)
        });
    });
    let table = ToleranceTable::build(10.0, 0.05, 6.0, 256, FallbackPolicy::Reject);
    g.bench_function("table_lookup", |b| {
        let mut sigma = 0.5;
        b.iter(|| {
            sigma = if sigma > 4.0 { 0.5 } else { sigma + 0.1 };
            table.half_width(sigma)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_tolerance);
criterion_main!(benches);
