//! DP-competitor benches: opening-window push cost (the paper calls the
//! violation check "very costly") and the MBB insert-or-bump path.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use hotpath_baseline::{DpHotSegments, EndpointPolicy, Metric, OpeningWindow};
use hotpath_core::geometry::{Point, Segment, TimePoint};
use hotpath_core::time::{SlidingWindow, Timestamp};

fn wavy(len: u64) -> Vec<TimePoint> {
    (1..=len)
        .map(|t| {
            TimePoint::new(Point::new(10.0 * t as f64, (t as f64 * 0.25).sin() * 8.0), Timestamp(t))
        })
        .collect()
}

fn bench_opening_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("opening_window");
    for policy in [EndpointPolicy::Nopw, EndpointPolicy::Bopw] {
        let pts = wavy(2_000);
        g.throughput(Throughput::Elements(pts.len() as u64));
        g.bench_with_input(BenchmarkId::new("push", format!("{policy:?}")), &pts, |b, pts| {
            b.iter_batched(
                || {
                    OpeningWindow::new(
                        TimePoint::new(Point::ORIGIN, Timestamp(0)),
                        5.0,
                        policy,
                        Metric::LInf,
                    )
                },
                |mut ow| {
                    for tp in pts {
                        let _ = ow.push(*tp);
                    }
                    ow
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_insert_or_bump(c: &mut Criterion) {
    let mut g = c.benchmark_group("dp_hot_segments");
    g.bench_function("insert_or_bump", |b| {
        b.iter_batched(
            || {
                let mut dp = DpHotSegments::new(5.0, EndpointPolicy::Nopw, SlidingWindow::new(100));
                for i in 0..5_000u64 {
                    let x = (i as f64 * 97.0) % 10_000.0;
                    let y = (i as f64 * 61.0) % 10_000.0;
                    dp.insert_or_bump(
                        Segment::new(Point::new(x, y), Point::new(x + 50.0, y)),
                        Timestamp(i),
                    );
                }
                dp
            },
            |mut dp| {
                dp.insert_or_bump(
                    Segment::new(Point::new(123.0, 456.0), Point::new(170.0, 456.0)),
                    Timestamp(9_999),
                );
                dp
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_opening_window, bench_insert_or_bump);
criterion_main!(benches);
