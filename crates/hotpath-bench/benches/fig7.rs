//! Figure 7 bench: end-to-end simulation cost as the number of objects
//! grows (eps = 10). Quality series (index size, score) are printed by
//! `cargo run -p hotpath-bench --bin experiments -- fig7`; Criterion
//! tracks the wall-time panel (7c) trend at CI scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hotpath_bench::Scale;
use hotpath_sim::simulation::{run, SimulationParams};

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_vary_objects");
    g.sample_size(10);
    for &n in &Scale::Quick.fig7_ns() {
        let params = SimulationParams { n, ..Scale::Quick.base(2008) };
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("simulate", n), &params, |b, p| {
            b.iter(|| run(p.clone()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
