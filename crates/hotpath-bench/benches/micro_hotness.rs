//! Hotness table micro-bench (Section 5.2): hash updates are expected
//! O(1), heap churn O(log n).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hotpath_core::hotness::Hotness;
use hotpath_core::motion_path::PathId;
use hotpath_core::time::{SlidingWindow, Timestamp};

fn bench_hotness(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotness");
    for n in [1_000u64, 100_000] {
        g.bench_with_input(BenchmarkId::new("record", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut h = Hotness::new(SlidingWindow::new(100));
                    for i in 0..n {
                        h.record_crossing(PathId(i % 1000), Timestamp(i));
                    }
                    h
                },
                |mut h| {
                    h.record_crossing(PathId(7), Timestamp(n));
                    h
                },
                BatchSize::LargeInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("advance_full_window", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut h = Hotness::new(SlidingWindow::new(100));
                    for i in 0..n {
                        h.record_crossing(PathId(i % 1000), Timestamp(i));
                    }
                    h
                },
                |mut h| {
                    h.advance(Timestamp(n + 200));
                    h
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hotness);
criterion_main!(benches);
