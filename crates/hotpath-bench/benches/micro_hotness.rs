//! Hotness table micro-bench (Section 5.2): hash updates are expected
//! O(1) plus O(log n) rank maintenance, timer-wheel expiry O(expired)
//! amortized per advance (no per-event heap churn), and the incremental
//! top-k walk O(k) regardless of the hot-set size.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use hotpath_core::hotness::Hotness;
use hotpath_core::motion_path::PathId;
use hotpath_core::time::{SlidingWindow, Timestamp};

fn loaded(n: u64) -> Hotness {
    let mut h = Hotness::new(SlidingWindow::new(100));
    for i in 0..n {
        let id = i % 1000;
        h.record_crossing(PathId(id), Timestamp(i), (id % 97) as f64);
    }
    h
}

fn bench_hotness(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotness");
    for n in [1_000u64, 100_000] {
        g.bench_with_input(BenchmarkId::new("record", n), &n, |b, &n| {
            b.iter_batched(
                || loaded(n),
                |mut h| {
                    h.record_crossing(PathId(7), Timestamp(n), 7.0);
                    h
                },
                BatchSize::LargeInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("advance_full_window", n), &n, |b, &n| {
            b.iter_batched(
                || loaded(n),
                |mut h| {
                    h.advance(Timestamp(n + 200));
                    h
                },
                BatchSize::LargeInput,
            );
        });
        // The incremental rank walk: flat across hot-set sizes.
        let h = loaded(n);
        g.bench_with_input(BenchmarkId::new("top8", n), &h, |b, h| {
            b.iter(|| h.top_iter().take(8).map(|(id, hot)| id.0 + hot as u64).sum::<u64>());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hotness);
criterion_main!(benches);
