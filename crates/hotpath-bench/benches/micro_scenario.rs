//! Scenario-generator micro-bench: per-tick measurement generation for
//! every registered workload, plus scenario construction (network
//! generation + hub ranking + closure planning). The generators feed
//! every end-to-end run, so a structural regression here slows the
//! whole experiment surface.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_core::time::Timestamp;
use hotpath_netsim::scenario::{ScenarioParams, REGISTRY};

fn bench_scenario_ticks(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_tick");
    let params = ScenarioParams { n: 500, ..ScenarioParams::quick(97) };
    for spec in REGISTRY {
        let mut scenario = (spec.build)(&params);
        let mut out = Vec::new();
        // Warm past the event boundaries (surge start, closures) so the
        // measured ticks exercise steady mid-scenario behavior.
        for t in 1..=params.duration / 2 {
            scenario.tick(Timestamp(t), &mut out);
        }
        let mut t = params.duration / 2;
        g.bench_with_input(BenchmarkId::new("tick", spec.name), &(), |b, ()| {
            b.iter(|| {
                t += 1;
                scenario.tick(Timestamp(t), &mut out);
                out.len()
            });
        });
    }
    g.finish();
}

fn bench_scenario_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_build");
    let params = ScenarioParams { n: 200, ..ScenarioParams::quick(98) };
    // One representative cheap build and the two event-heavy ones (hub
    // ranking, closure planning + longest-link scan).
    for name in ["sporting_event", "rush_hour_surge", "evacuation_reroute"] {
        let spec = REGISTRY.iter().find(|s| s.name == name).expect("registered");
        g.bench_with_input(BenchmarkId::new("build", name), &(), |b, ()| {
            b.iter(|| (spec.build)(&params).n());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scenario_ticks, bench_scenario_build);
criterion_main!(benches);
