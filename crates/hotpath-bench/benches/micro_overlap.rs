//! FSA-overlap micro-bench: stabbing counts and max-depth sweep scaling
//! with the per-epoch batch size (Alg. 2 lines 8-12 support machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::strategy::FsaSet;

fn rects(n: usize) -> Vec<Rect> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 37.0) % 5_000.0;
            let y = (i as f64 * 53.0) % 5_000.0;
            Rect::new(Point::new(x, y), Point::new(x + 20.0, y + 20.0))
        })
        .collect()
}

fn bench_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("fsa_overlap");
    for n in [100usize, 1_000, 10_000] {
        let rs = rects(n);
        g.bench_with_input(BenchmarkId::new("build", n), &rs, |b, rs| {
            b.iter(|| FsaSet::build(rs.clone(), 20.0));
        });
        let set = FsaSet::build(rs.clone(), 20.0);
        let clip = rs[n / 2];
        g.bench_with_input(BenchmarkId::new("max_depth", n), &set, |b, set| {
            b.iter(|| set.max_depth_region(&clip));
        });
        g.bench_with_input(BenchmarkId::new("stab", n), &set, |b, set| {
            b.iter(|| set.stab_count(&Point::new(2_500.0, 2_500.0)));
        });
        // The stamped-bitmap dedup query (allocation- and sort-free
        // after warm-up; the wrapper clones the hit list out).
        g.bench_with_input(BenchmarkId::new("intersecting", n), &set, |b, set| {
            b.iter(|| set.intersecting(&clip));
        });
        // Parallel rasterization across the shard-style worker pool:
        // identical output, scoped threads for the build. Only sized
        // where the thread clamp (one chunk per 256 rects) actually
        // engages workers — at n=100 it would silently re-measure the
        // sequential path under a parallel label.
        if n >= 1_000 {
            g.bench_with_input(BenchmarkId::new("build_threads4", n), &rs, |b, rs| {
                b.iter(|| FsaSet::build_parallel(rs.clone(), 20.0, 4));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_overlap);
criterion_main!(benches);
