//! Engine-backend micro-bench: the same synthetic multi-epoch workload
//! driven through [`SyncEngine`] and [`PipelinedEngine`] (1 and 2
//! shards). The backends are bit-for-bit identical, so any spread is
//! pure scheduling: the pipelined engine moves the publish stage and
//! per-tick expiry onto its worker, which pays off on multi-core hosts
//! and must never structurally regress the single-core case (the
//! engine's double-buffer bookkeeping is O(1) per state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_core::config::Config;
use hotpath_core::coordinator::Coordinator;
use hotpath_core::engine::EngineKind;
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::raytrace::ClientState;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;

/// Drives one full run — 12 epochs x 10 ticks x 40 states — through
/// the given backend and returns the final index size (kept live so
/// nothing is optimized away).
fn drive(kind: EngineKind, shards: usize) -> usize {
    let config = Config::paper_defaults().with_epoch(10).with_window(80).with_shards(shards);
    let mut engine = kind.build(Coordinator::new(config));
    let mut s = 0x5eed_u64;
    let mut rand = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        s >> 33
    };
    for epoch in 0..12u64 {
        for tick in 1..=10u64 {
            let now = Timestamp(epoch * 10 + tick);
            for i in 0..40u64 {
                let (a, b) = (rand(), rand());
                let x = (a % 10 * 400) as f64;
                let y = (b % 5 * 300) as f64;
                let end = Point::new(x + 45.0 + (a % 4) as f64 * 3.0, y + (b % 20) as f64);
                engine.submit(ClientState {
                    object: ObjectId(i),
                    start: Point::new(x, y),
                    ts: Timestamp(now.raw().saturating_sub(5)),
                    fsa: Rect::new(end - Point::new(2.0, 2.0), end + Point::new(2.0, 2.0)),
                    te: now,
                });
            }
            engine.advance_time(now);
            if tick == 10 {
                let _ = engine.process_epoch(now);
            }
        }
    }
    let snap = engine.snapshot();
    let size = snap.index_size;
    let _ = engine.finish();
    size
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    for (kind, shards) in [
        (EngineKind::Sync, 1usize),
        (EngineKind::Pipelined, 1),
        (EngineKind::Sync, 2),
        (EngineKind::Pipelined, 2),
    ] {
        g.bench_with_input(
            BenchmarkId::new(format!("{kind}"), shards),
            &(kind, shards),
            |b, &(kind, shards)| {
                b.iter(|| drive(kind, shards));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
