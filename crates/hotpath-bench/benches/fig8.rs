//! Figure 8 bench: end-to-end simulation cost as the tolerance grows at
//! fixed N. The paper's 8c claim: processing time falls by more than 3x
//! from eps = 2 to eps = 20.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_bench::Scale;
use hotpath_sim::simulation::{run, SimulationParams};

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_vary_tolerance");
    g.sample_size(10);
    let n = Scale::Quick.fig8_n();
    for &eps in &Scale::Quick.fig8_eps() {
        let params = SimulationParams { n, eps, ..Scale::Quick.base(2009) };
        g.bench_with_input(BenchmarkId::new("simulate", format!("eps{eps}")), &params, |b, p| {
            b.iter(|| run(p.clone()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
