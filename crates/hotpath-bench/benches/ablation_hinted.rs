//! Ablation for the Section 7 feedback extension: full-simulation cost
//! with and without coordinator hints. Quality deltas are printed by
//! `experiments hinted`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_bench::Scale;
use hotpath_sim::simulation::{run, SimulationParams};

fn bench_hinted(c: &mut Criterion) {
    let mut g = c.benchmark_group("hinted_ablation");
    g.sample_size(10);
    for hints in [false, true] {
        let params = SimulationParams { n: 500, hints, run_dp: false, ..Scale::Quick.base(2011) };
        g.bench_with_input(
            BenchmarkId::new("simulate", if hints { "hinted" } else { "plain" }),
            &params,
            |b, p| {
                b.iter(|| run(p.clone()));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_hinted);
criterion_main!(benches);
