//! Top-k query micro-bench: with the incremental per-shard rank
//! structure, `top_k()` / `top_k_score()` merge `k` entries per shard —
//! the medians must stay flat as the hot-set size grows from 1k to 50k
//! paths (the old implementation sorted the whole hot set per query).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_core::config::Config;
use hotpath_core::coordinator::Coordinator;
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::raytrace::ClientState;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;

/// A coordinator whose hot set holds `p` distinct one-crossing paths
/// (plus a handful of hotter ones so the top-k is non-trivial).
fn with_hot_paths(p: usize, shards: usize) -> Coordinator {
    let mut c = Coordinator::new(
        Config::paper_defaults().with_window(1_000_000).with_epoch(10).with_shards(shards),
    );
    let states = (0..p).map(|i| {
        // Distinct corridors on a coarse lattice: every state mints its
        // own path (Case 3), far enough apart that FSAs never overlap.
        let x = (i % 1_000) as f64 * 120.0;
        let y = (i / 1_000) as f64 * 120.0;
        let end = Point::new(x + 40.0, y);
        ClientState {
            object: ObjectId(i as u64),
            start: Point::new(x, y),
            ts: Timestamp(0),
            fsa: Rect::new(end - Point::new(2.0, 2.0), end + Point::new(2.0, 2.0)),
            te: Timestamp(9),
        }
    });
    c.submit_batch(states);
    let _ = c.process_epoch(Timestamp(10));
    // Re-cross a few corridors so hotness values differentiate.
    for round in 0..3usize {
        let states = (0..32 - round * 10).map(|i| {
            let x = (i % 1_000) as f64 * 120.0;
            let y = (i / 1_000) as f64 * 120.0;
            let end = Point::new(x + 40.0, y);
            ClientState {
                object: ObjectId(i as u64),
                start: Point::new(x, y),
                ts: Timestamp(10),
                fsa: Rect::new(end - Point::new(2.0, 2.0), end + Point::new(2.0, 2.0)),
                te: Timestamp(19),
            }
        });
        c.submit_batch(states);
        let _ = c.process_epoch(Timestamp(20));
    }
    assert!(c.hot_count() >= p, "hot set smaller than intended");
    c
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("topk");
    for p in [1_000usize, 10_000, 50_000] {
        let coord = with_hot_paths(p, 1);
        g.bench_with_input(BenchmarkId::new("top_k", p), &coord, |b, coord| {
            b.iter(|| coord.top_k());
        });
        g.bench_with_input(BenchmarkId::new("top_k_score", p), &coord, |b, coord| {
            b.iter(|| coord.top_k_score());
        });
        // The pre-incremental implementation, kept as a measured
        // reference: materialize the hot set, sort, truncate. Scales
        // with P while `top_k` stays flat. (`hot_paths` itself is now
        // cached between mutations, so after the first iteration this
        // measures copy + sort — still the O(P log P) the old query
        // path paid per read.)
        g.bench_with_input(BenchmarkId::new("naive_full_sort", p), &coord, |b, coord| {
            b.iter(|| {
                let mut all = coord.hot_paths().to_vec();
                all.sort_by(|a, b| {
                    b.hotness
                        .cmp(&a.hotness)
                        .then_with(|| b.path.length().total_cmp(&a.path.length()))
                        .then_with(|| a.path.id.cmp(&b.path.id))
                });
                all.truncate(10);
                all
            });
        });
    }
    // The merge stays O(k·shards): a sharded coordinator pays per shard,
    // not per hot path.
    let coord = with_hot_paths(10_000, 4);
    g.bench_with_input(BenchmarkId::new("top_k_sharded4", 10_000usize), &coord, |b, coord| {
        b.iter(|| coord.top_k());
    });
    g.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
