//! Serving-path micro-bench: lock-free snapshot read throughput through
//! a `hotpathd` front door, at 1/4/16 reader threads, with the epoch
//! loop idle and with it publishing continuously. Reads go through
//! [`SnapshotHandle::read`] — an atomic load, a hazard-slot store, and a
//! revalidation load; no mutex, no allocation, no refcount traffic — so
//! throughput must not collapse when the writer publishes or when more
//! readers pile on (modulo plain CPU contention on small hosts).
//!
//! [`SnapshotHandle::read`]: hotpath_core::snapshot::SnapshotHandle::read

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_core::config::Config;
use hotpath_core::coordinator::Coordinator;
use hotpath_core::engine::EngineKind;
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::raytrace::ClientState;
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;
use hotpath_serve::server::{Hotpathd, ServerHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Reads measured per `b.iter` pass.
const READS: usize = 256;

fn traversal(w: u64, t: u64) -> ClientState {
    let y = (w % 4) as f64 * 300.0;
    let end = Point::new(50.0, y);
    ClientState {
        object: ObjectId(w),
        start: Point::new(0.0, y),
        ts: Timestamp(t.saturating_sub(8)),
        fsa: Rect::new(Point::new(end.x - 2.0, end.y - 2.0), Point::new(end.x + 2.0, end.y + 2.0)),
        te: Timestamp(t),
    }
}

struct Rig {
    handle: Option<ServerHandle>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<u64>>,
}

impl Rig {
    /// A running server with `extra_readers` background reader threads
    /// and, when `busy`, a feeder publishing epochs continuously
    /// (closed-loop paced so the command queue stays bounded).
    fn spawn(extra_readers: usize, busy: bool) -> Rig {
        let config = Config::paper_defaults().with_epoch(10).with_window(100);
        let handle = Hotpathd::spawn(EngineKind::Sync.build(Coordinator::new(config)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        if busy {
            let tx = handle.sender();
            let mut reader = handle.reader();
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                use hotpath_serve::server::ServerMsg;
                let mut t = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    t += 1;
                    for w in 0..4u64 {
                        let _ = tx.send(ServerMsg::Submit(traversal(w, t)));
                    }
                    let _ = tx.send(ServerMsg::Advance(Timestamp(t)));
                    if t.is_multiple_of(10) {
                        // Pace against the publish so the queue stays small.
                        while reader.epoch() < t / 10 && !stop.load(Ordering::Relaxed) {
                            std::hint::spin_loop();
                        }
                    }
                }
                t
            }));
        }
        for _ in 0..extra_readers {
            let mut reader = handle.reader();
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let mut acc = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    acc = acc.wrapping_add(reader.read().epoch);
                }
                acc
            }));
        }
        Rig { handle: Some(handle), stop, threads }
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.shutdown();
        }
    }
}

fn bench_serving_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("serving");
    for busy in [false, true] {
        let mode = if busy { "read_busy" } else { "read_idle" };
        for readers in [1usize, 4, 16] {
            let rig = Rig::spawn(readers - 1, busy);
            let mut reader = rig.handle.as_ref().expect("live server").reader();
            g.bench_with_input(BenchmarkId::new(mode, readers), &readers, |b, _| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for _ in 0..READS {
                        let snap = reader.read();
                        acc = acc.wrapping_add(snap.epoch).wrapping_add(snap.index_size as u64);
                    }
                    acc
                });
            });
            drop(rig);
        }
    }
    g.finish();
}

criterion_group!(benches, bench_serving_reads);
criterion_main!(benches);
