//! Parallel Phase-B evaluation: sequential vs worker pools, uniform vs
//! flash-crowd-skewed deferred sets.
//!
//! Measures `phase_b_eval` — the pure per-state evaluation that the
//! strategy fans out over region-partitioned work-stealing workers —
//! against a prepared read-only index, so iterations are side-effect
//! free and comparable. `uniform` spreads the deferred FSAs evenly over
//! 16 clusters (regions balance naturally); `skewed` piles 90% of them
//! onto one cluster, the flash-crowd shape where a static region
//! partition starves all but one worker and only stealing rebalances.
//!
//! Worker counts are passed straight to `phase_b_eval`, bypassing the
//! coordinator's hardware clamp: on a single-core machine (the dev
//! container, some CI runners) the workers timeshare one core, so the
//! multi-worker rows measure overhead rather than speedup and the
//! busy-time imbalance printed at the end is scheduler noise. Speedup
//! and the `< 1.5x` skewed imbalance claim are only meaningful on
//! multi-core hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hotpath_core::geometry::{Point, Rect};
use hotpath_core::index::MotionPathIndex;
use hotpath_core::raytrace::ClientState;
use hotpath_core::strategy::{build_fsa_set, phase_b_eval, OverlapPolicy, SingleReader};
use hotpath_core::time::Timestamp;
use hotpath_core::ObjectId;

const CLUSTERS: usize = 16;
const DEFERRED: usize = 512;

fn cluster_center(c: usize) -> Point {
    Point::new((c % 4) as f64 * 700.0, (c / 4) as f64 * 700.0)
}

/// A deferred batch of `DEFERRED` states with unique starts; `hot_frac`
/// of the FSAs land on cluster 0, the rest rotate over all clusters.
fn batch(hot_frac: f64) -> Vec<ClientState> {
    let mut s = 0x5EED_u64 | 1;
    let mut roll = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        s >> 33
    };
    (0..DEFERRED)
        .map(|i| {
            let r = roll();
            let hot = (r % 1000) as f64 / 1000.0 < hot_frac;
            let c = if hot { 0 } else { (r as usize) % CLUSTERS };
            let center = cluster_center(c);
            let jx = (r % 157) as f64;
            let jy = (r % 113) as f64;
            let half = 30.0;
            let end = Point::new(center.x + jx, center.y + jy);
            ClientState {
                object: ObjectId(i as u64),
                start: Point::new(20_000.0 + i as f64 * 3.0, 20_000.0),
                ts: Timestamp(1),
                fsa: Rect::new(
                    Point::new(end.x - half, end.y - half),
                    Point::new(end.x + half, end.y + half),
                ),
                te: Timestamp(9),
            }
        })
        .collect()
}

/// An index with stored endpoints inside every cluster, so each eval
/// finds non-trivial base vertex groups.
fn seeded_index() -> MotionPathIndex {
    let mut index = MotionPathIndex::new(50.0, 1e-3);
    for c in 0..CLUSTERS {
        let center = cluster_center(c);
        for j in 0..8 {
            let start = Point::new(-500.0 - j as f64 * 10.0, c as f64 * 10.0);
            let end =
                Point::new(center.x + (j % 4) as f64 * 15.0, center.y + (j / 4) as f64 * 15.0);
            index.insert(start, end);
        }
    }
    index
}

fn bench_phase_b(c: &mut Criterion) {
    let mut g = c.benchmark_group("phase_b_eval");
    let index = seeded_index();
    let deferred: Vec<u32> = (0..DEFERRED as u32).collect();
    for (dist, hot_frac) in [("uniform", 0.0), ("skewed", 0.9)] {
        let states = batch(hot_frac);
        let fsas = build_fsa_set(&states, 40.0, OverlapPolicy::Full, 1);
        for workers in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(dist, format!("w{workers}")),
                &workers,
                |b, &workers| {
                    b.iter(|| {
                        phase_b_eval(
                            &states,
                            &deferred,
                            &SingleReader { index: &index },
                            &fsas,
                            OverlapPolicy::Full,
                            workers,
                        )
                        .load
                        .chunks
                    });
                },
            );
        }
        // One untimed parallel pass, to surface the steal counters and
        // busy-time ratio next to the timings (single-core caveat in
        // the module docs applies).
        let eval = phase_b_eval(
            &states,
            &deferred,
            &SingleReader { index: &index },
            &fsas,
            OverlapPolicy::Full,
            4,
        );
        eprintln!(
            "phase_b_eval/{dist}: w4 regions={} chunks={} stolen={} imbalance={:.2}",
            eval.load.regions, eval.load.chunks, eval.load.stolen, eval.load.imbalance
        );
    }
    g.finish();
}

criterion_group!(benches, bench_phase_b);
criterion_main!(benches);
