//! Captures bench baselines and gates perf regressions against them.
//!
//! ```text
//! bench_gate capture [--dir <repo-root>] [--captures-dir <dir>] [--only <bench>]
//! bench_gate check [--tolerance <frac>] [--dir <repo-root>] [--captures-dir <dir>]
//!            [--only <bench>]
//! ```
//!
//! `--only <bench>` restricts either mode to a single gated target —
//! capture a new bench's first baseline without re-running (and
//! re-baselining) every other bench on this machine.
//!
//! `--captures-dir` keeps the raw per-bench `CRITERION_CAPTURE` JSONL
//! streams under the given directory (`<bench>.jsonl`) instead of a
//! deleted temp file — CI uploads them as a workflow artifact.
//!
//! Both modes drive `cargo bench` for the gated targets with the
//! vendored criterion's `CRITERION_CAPTURE` hook, collecting one median
//! per benchmark. `capture` writes them to checked-in
//! `BENCH_<target>.json` snapshots at the repo root; `check` re-runs
//! and exits nonzero when any benchmark got slower than
//! `baseline * (1 + tolerance)` or disappeared. New benchmarks are
//! reported but never fail the gate — capture a fresh baseline to adopt
//! them.
//!
//! Re-baselining intentionally (e.g. after an accepted perf trade-off):
//! `cargo run --release -p hotpath-bench --bin bench_gate -- capture`
//! and commit the updated `BENCH_*.json`.

use hotpath_bench::gate::{compare, has_failures, margin_table, Snapshot};
use std::path::{Path, PathBuf};
use std::process::Command;

/// The `cargo bench` targets with checked-in baselines.
const GATED_BENCHES: &[&str] = &[
    "micro_raytrace",
    "fig8",
    "micro_topk",
    "micro_hotness",
    "micro_overlap",
    "micro_fsa_delta",
    "micro_scenario",
    "micro_pipeline",
    "micro_serving",
    "micro_phase_b",
];

/// Default relative slack: CI runners and developer machines differ, so
/// the gate catches structural regressions (2x+), not single-digit
/// percent noise.
const DEFAULT_TOLERANCE: f64 = 1.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut dir = PathBuf::from(".");
    let mut captures_dir: Option<PathBuf> = None;
    let mut only: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "capture" | "check" => mode = Some(args[i].clone()),
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t: &f64| t >= 0.0 && t.is_finite())
                    .unwrap_or_else(|| usage("--tolerance needs a non-negative number"));
            }
            "--dir" => {
                i += 1;
                dir = PathBuf::from(args.get(i).unwrap_or_else(|| usage("--dir needs a path")));
            }
            "--captures-dir" => {
                i += 1;
                captures_dir = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| usage("--captures-dir needs a path")),
                ));
            }
            "--only" => {
                i += 1;
                let name = args.get(i).unwrap_or_else(|| usage("--only needs a bench name"));
                if !GATED_BENCHES.contains(&name.as_str()) {
                    usage(&format!(
                        "--only: '{name}' is not a gated bench (one of: {})",
                        GATED_BENCHES.join(", ")
                    ));
                }
                only = Some(name.clone());
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    // The capture path reaches the bench subprocess through an env var,
    // and cargo runs benches from the package dir — absolutize it.
    if let Some(d) = captures_dir.take() {
        let abs = std::fs::create_dir_all(&d)
            .and_then(|()| std::fs::canonicalize(&d))
            .unwrap_or_else(|e| {
                eprintln!("bench_gate: cannot create --captures-dir {}: {e}", d.display());
                std::process::exit(2);
            });
        captures_dir = Some(abs);
    }
    let selected: Vec<&str> =
        GATED_BENCHES.iter().copied().filter(|b| only.as_deref().is_none_or(|o| *b == o)).collect();
    match mode.as_deref() {
        Some("capture") => capture(&dir, captures_dir.as_deref(), &selected),
        Some("check") => check(&dir, tolerance, captures_dir.as_deref(), &selected),
        _ => usage("need a mode: capture or check"),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench_gate <capture|check> [--tolerance <frac>] [--dir <repo-root>] \
         [--captures-dir <dir>] [--only <bench>]"
    );
    std::process::exit(2);
}

fn baseline_path(dir: &Path, bench: &str) -> PathBuf {
    dir.join(format!("BENCH_{bench}.json"))
}

/// Runs one `cargo bench` target with the capture hook and collects the
/// resulting snapshot. `dir` is the workspace the bench runs in — the
/// same root the baselines live under, so `--dir` can never compare one
/// checkout's measurements against another's baselines.
fn run_bench(dir: &Path, bench: &str, captures_dir: Option<&Path>) -> Snapshot {
    let capture_file = match captures_dir {
        Some(d) => d.join(format!("{bench}.jsonl")),
        None => std::env::temp_dir()
            .join(format!("criterion-capture-{bench}-{}.jsonl", std::process::id())),
    };
    let _ = std::fs::remove_file(&capture_file);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    eprintln!("bench_gate: running cargo bench -p hotpath-bench --bench {bench}");
    let status = Command::new(cargo)
        .args(["bench", "-p", "hotpath-bench", "--bench", bench])
        .current_dir(dir)
        .env("CRITERION_CAPTURE", &capture_file)
        .status()
        .unwrap_or_else(|e| {
            eprintln!("bench_gate: failed to spawn cargo: {e}");
            std::process::exit(2);
        });
    if !status.success() {
        eprintln!("bench_gate: cargo bench --bench {bench} failed ({status})");
        std::process::exit(2);
    }
    let jsonl = std::fs::read_to_string(&capture_file).unwrap_or_else(|e| {
        eprintln!("bench_gate: no capture produced at {}: {e}", capture_file.display());
        std::process::exit(2);
    });
    if captures_dir.is_none() {
        let _ = std::fs::remove_file(&capture_file);
    }
    let snap = Snapshot::from_capture(bench, &jsonl);
    if snap.entries.is_empty() {
        eprintln!("bench_gate: bench {bench} captured zero measurements");
        std::process::exit(2);
    }
    snap
}

fn capture(dir: &Path, captures_dir: Option<&Path>, benches: &[&str]) {
    for &bench in benches {
        let snap = run_bench(dir, bench, captures_dir);
        let path = baseline_path(dir, bench);
        std::fs::write(&path, snap.to_json()).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot write {}: {e}", path.display());
            std::process::exit(2);
        });
        println!("wrote {} ({} entries)", path.display(), snap.entries.len());
    }
}

fn check(dir: &Path, tolerance: f64, captures_dir: Option<&Path>, benches: &[&str]) {
    let mut failed = false;
    for &bench in benches {
        let path = baseline_path(dir, bench);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!(
                "bench_gate: missing baseline {} ({e}); run `bench_gate capture` and commit it",
                path.display()
            );
            std::process::exit(2);
        });
        let baseline = Snapshot::from_json(&text).unwrap_or_else(|e| {
            eprintln!("bench_gate: bad baseline {}: {e}", path.display());
            std::process::exit(2);
        });
        let current = run_bench(dir, bench, captures_dir);
        let rows = compare(&baseline, &current, tolerance);
        println!("== {bench} (tolerance +{:.0}%)", tolerance * 100.0);
        // The margin table shows how close each benchmark sits to the
        // gate: 100% headroom = at/below baseline, 0% = about to trip,
        // negative = regressed.
        print!("{}", margin_table(&rows, &baseline, &current, tolerance));
        if has_failures(&rows) {
            failed = true;
        }
    }
    if failed {
        eprintln!("bench_gate: FAIL — regressions above tolerance (or missing benches)");
        std::process::exit(1);
    }
    println!("bench_gate: all gated benches within tolerance");
}
