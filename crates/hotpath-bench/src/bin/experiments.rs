//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [fig7|fig8|fig9|fig10|claims|hinted|all]
//!             [--scale paper|mid|quick] [--shards N] [--phase-b-workers N]
//!             [--engine sync|pipelined] [--csv <dir>]
//! experiments scenario <name|all> [--scale ...] [--shards N]
//!             [--phase-b-workers N] [--engine sync|pipelined] [--csv <dir>]
//!             [--sigma s1,s2,...] [--fallback reject|minimal[:w]|all]
//!             [--restore-check] [--fault-seed N]
//! experiments swarm [--scale ...] [--shards N] [--phase-b-workers N]
//!             [--engine sync|pipelined]
//!             [--seed N] [--churn F] [--fault-seed N] [--verify]
//! experiments serve [--socket PATH] [--shards N]
//!             [--engine sync|pipelined] [--ticks N]
//! ```
//!
//! Defaults: `all --scale mid --shards 1 --engine sync`. `--engine
//! pipelined` runs every epoch through the double-buffered engine
//! backend (ingest overlaps the publish stage and expiry on a worker
//! thread); results are bit-for-bit identical to `sync`. `--scale paper` runs the
//! exact Section 6.1 parameters (N up to 100 000 — allow several
//! minutes). `--shards N` partitions the coordinator into `N` shards
//! (Phase A runs on one thread per shard); results are identical at
//! every shard count, only the wall clock changes. `--phase-b-workers
//! N` runs Phase B's pure evaluation on `N` work-stealing workers
//! (clamped to the machine's cores; small batches degrade to the
//! sequential path); results are identical at every worker count.
//!
//! `scenario` drives the netsim scenario registry: each named workload
//! runs crisp with its invariants verified (exit 1 on violation), with
//! parity against a fresh sequential `sync` reference asserted whenever
//! `--shards > 1` or `--engine pipelined`, then sweeps the `(sigma,
//! fallback)` uncertainty grid. `--csv <dir>` additionally writes each
//! scenario's per-epoch metric series to `<dir>/scenario_<name>.csv`.
//!
//! `swarm` runs the deterministic `client_swarm` load generator against
//! a `hotpathd` front door (lock-free snapshot readers hammering while
//! the swarm writes); `--verify` runs the identical schedule on both
//! engine backends and exits 1 unless the final snapshots are
//! fingerprint-identical. `serve` binds a `hotpathd` to a unix socket
//! and drives a scripted wire client through submit/advance/query — an
//! offline smoke of the full out-of-process stack.

use hotpath_bench::Scale;
use hotpath_core::engine::EngineKind;
use hotpath_core::uncertainty::FallbackPolicy;
use hotpath_netsim::scenario::{spec, REGISTRY};
use hotpath_serve::swarm::{run_swarm, verify_swarm, SwarmParams, SwarmReport};
use hotpath_sim::engine_loop::CheckpointPolicy;
use hotpath_sim::experiment::{figure10, figure7, figure8, figure9, format_fig7, format_fig8};
use hotpath_sim::options::RunOptions;
use hotpath_sim::report::{network_map, paths_map};
use hotpath_sim::scenario_run::{
    check_parity_against, check_restart_parity, run_named, scenario_sigma_sweep, ScenarioRunParams,
};
use hotpath_sim::simulation::{run, SimulationParams};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scenario_name: Option<String> = None;
    let mut scale = Scale::Mid;
    let mut shards = 1usize;
    let mut phase_b_workers = 1usize;
    let mut engine = EngineKind::Sync;
    let mut sigmas: Option<Vec<f64>> = None;
    let mut fallbacks: Option<Vec<FallbackPolicy>> = None;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut ckpt = CheckpointPolicy::default();
    let mut restore_check = false;
    let mut fault_seed: Option<u64> = None;
    let mut swarm_seed: Option<u64> = None;
    let mut churn: Option<f64> = None;
    let mut verify = false;
    let mut socket: Option<std::path::PathBuf> = None;
    let mut ticks: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .unwrap_or_else(|| usage("--scale needs a value"))
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("{e}")));
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--shards needs a positive integer"));
            }
            "--phase-b-workers" => {
                i += 1;
                phase_b_workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--phase-b-workers needs a positive integer"));
            }
            "--engine" => {
                i += 1;
                engine = args
                    .get(i)
                    .unwrap_or_else(|| usage("--engine needs a value"))
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("{e}")));
            }
            "--sigma" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage("--sigma needs a comma list"));
                let parsed: Option<Vec<f64>> = list
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().ok().filter(|v| *v >= 0.0))
                    .collect();
                sigmas =
                    Some(parsed.unwrap_or_else(|| usage("--sigma needs non-negative numbers")));
            }
            "--fallback" => {
                i += 1;
                let tag = args.get(i).unwrap_or_else(|| usage("--fallback needs a policy"));
                fallbacks = Some(if tag == "all" {
                    vec![FallbackPolicy::Reject, FallbackPolicy::MinimalArea(0.5)]
                } else {
                    vec![tag
                        .parse::<FallbackPolicy>()
                        .unwrap_or_else(|e| usage(&format!("{e} (or all)")))]
                });
            }
            "--seed" => {
                i += 1;
                swarm_seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer")),
                );
            }
            "--churn" => {
                i += 1;
                churn = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .filter(|f| (0.0..=1.0).contains(f))
                        .unwrap_or_else(|| usage("--churn needs a fraction in [0, 1]")),
                );
            }
            "--verify" => verify = true,
            "--socket" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| usage("--socket needs a path"));
                socket = Some(std::path::PathBuf::from(path));
            }
            "--ticks" => {
                i += 1;
                ticks = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage("--ticks needs a positive integer")),
                );
            }
            "--csv" => {
                i += 1;
                let dir = args.get(i).unwrap_or_else(|| usage("--csv needs a directory"));
                csv_dir = Some(std::path::PathBuf::from(dir));
            }
            "--checkpoint-every" => {
                i += 1;
                ckpt.every_epochs = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage("--checkpoint-every needs a positive integer")),
                );
            }
            "--checkpoint-dir" => {
                i += 1;
                let dir = args.get(i).unwrap_or_else(|| usage("--checkpoint-dir needs a path"));
                ckpt.dir = Some(std::path::PathBuf::from(dir));
            }
            "--restore-from" => {
                i += 1;
                let path = args.get(i).unwrap_or_else(|| usage("--restore-from needs a file"));
                ckpt.restore_from = Some(std::path::PathBuf::from(path));
            }
            "--restore-check" => restore_check = true,
            "--fault-seed" => {
                i += 1;
                fault_seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--fault-seed needs an integer")),
                );
            }
            "scenario" => {
                i += 1;
                let name = args.get(i).unwrap_or_else(|| usage("scenario needs a name (or 'all')"));
                if name != "all" && spec(name).is_none() {
                    let hint = closest_scenario(name)
                        .map(|c| format!(" — did you mean '{c}'?"))
                        .unwrap_or_default();
                    usage(&format!(
                        "unknown scenario '{name}'{hint} (available: {})",
                        REGISTRY.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
                    ));
                }
                which = "scenario".to_string();
                scenario_name = Some(name.clone());
            }
            w @ ("fig7" | "fig8" | "fig9" | "fig10" | "claims" | "hinted" | "ablate"
            | "filters" | "compress" | "uncertain" | "checkpoint-bench" | "swarm"
            | "serve" | "all") => {
                which = w.to_string();
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    println!(
        "# Hot Motion Paths — experiment reproduction (scale: {scale:?}, shards: {shards}, \
         phase-b workers: {phase_b_workers}, engine: {engine})"
    );
    println!();
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| usage(&format!("--csv: {e}")));
    }
    let wall = Instant::now();
    match which.as_str() {
        "scenario" => scenario(
            scenario_name.as_deref().unwrap_or("all"),
            scale,
            shards,
            phase_b_workers,
            engine,
            sigmas.as_deref(),
            fallbacks.as_deref(),
            csv_dir.as_deref(),
            &ckpt,
            restore_check,
            fault_seed,
        ),
        "fig7" => fig7(scale, shards, phase_b_workers, engine, csv_dir.as_deref()),
        "fig8" => fig8(scale, shards, phase_b_workers, engine, csv_dir.as_deref()),
        "fig9" => fig9(scale, shards, phase_b_workers, engine),
        "fig10" => fig10_(scale, shards, phase_b_workers, engine),
        "claims" => claims(scale, shards, phase_b_workers, engine),
        "hinted" => hinted(scale, shards, phase_b_workers, engine),
        "ablate" => ablate(scale, shards, phase_b_workers, engine),
        "filters" => filters(scale, shards, phase_b_workers, engine),
        "compress" => compress(),
        "uncertain" => uncertain(),
        "checkpoint-bench" => checkpoint_bench(shards),
        "swarm" => {
            swarm_cmd(scale, shards, phase_b_workers, engine, swarm_seed, churn, fault_seed, verify)
        }
        "serve" => serve_cmd(shards, engine, socket, ticks.unwrap_or(50)),
        "all" => {
            fig7(scale, shards, phase_b_workers, engine, csv_dir.as_deref());
            fig8(scale, shards, phase_b_workers, engine, csv_dir.as_deref());
            fig9(scale, shards, phase_b_workers, engine);
            fig10_(scale, shards, phase_b_workers, engine);
            claims(scale, shards, phase_b_workers, engine);
            hinted(scale, shards, phase_b_workers, engine);
            ablate(scale, shards, phase_b_workers, engine);
            filters(scale, shards, phase_b_workers, engine);
            compress();
            uncertain();
        }
        _ => unreachable!(),
    }
    println!("total wall clock: {:.2} s", wall.elapsed().as_secs_f64());
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments [fig7|fig8|fig9|fig10|claims|hinted|ablate|filters|compress|uncertain|checkpoint-bench|all] \
         [--scale paper|mid|quick] [--shards N] [--phase-b-workers N] [--engine sync|pipelined] [--csv <dir>]\n       \
         experiments scenario <name|all> [--scale paper|mid|quick] [--shards N] \
         [--phase-b-workers N] [--engine sync|pipelined] [--csv <dir>] \
         [--sigma s1,s2,...] [--fallback reject|minimal[:<w>]|all] \
         [--checkpoint-every N] [--checkpoint-dir <dir>] [--restore-from <file>] [--restore-check] \
         [--fault-seed N]\n       \
         experiments swarm [--scale paper|mid|quick] [--shards N] [--phase-b-workers N] [--engine sync|pipelined] \
         [--seed N] [--churn F] [--fault-seed N] [--verify]\n       \
         experiments serve [--socket PATH] [--shards N] [--engine sync|pipelined] [--ticks N]"
    );
    std::process::exit(2);
}

/// The registry name closest to `name` by edit distance, when close
/// enough to plausibly be a typo (the `scenario` command's
/// did-you-mean hint).
fn closest_scenario(name: &str) -> Option<&'static str> {
    let best = REGISTRY.iter().map(|s| (edit_distance(name, s.name), s.name)).min()?;
    (best.0 <= 3.max(name.len() / 3)).then_some(best.1)
}

/// Levenshtein distance over characters.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = Vec::with_capacity(b.len() + 1);
        cur.push(i + 1);
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The scenario subsystem: crisp run + invariants (+ parity against the
/// sequential sync reference when sharded or pipelined), then the
/// `(sigma, fallback)` uncertainty sweep; `--csv` writes each
/// scenario's per-epoch series. `--checkpoint-every`/`--checkpoint-dir`
/// write periodic images per scenario, `--restore-from` warm-starts
/// from one, and `--restore-check` pins restart parity: checkpoint at
/// mid-run, tear the engine down, restore from bytes, and require the
/// continuation to equal the uninterrupted run bit for bit.
#[allow(clippy::too_many_arguments)]
fn scenario(
    name: &str,
    scale: Scale,
    shards: usize,
    phase_b_workers: usize,
    engine: EngineKind,
    sigmas: Option<&[f64]>,
    fallbacks: Option<&[FallbackPolicy]>,
    csv_dir: Option<&std::path::Path>,
    ckpt: &CheckpointPolicy,
    restore_check: bool,
    fault_seed: Option<u64>,
) {
    let scenario_scale = scale.scenario_params(2015);
    let mut base = ScenarioRunParams::default()
        .with_shards(shards)
        .with_phase_b_workers(phase_b_workers)
        .with_engine(engine);
    if let Some(seed) = fault_seed {
        base = base.with_fault_seed(seed);
    }
    // Near-edge default grid: eps = 10 solves up to sigma ~ 5.1, so the
    // last point forces the fallback policy to act.
    let default_sigmas = [0.5, 2.0, 6.0];
    let sigmas = sigmas.unwrap_or(&default_sigmas);
    let default_fallbacks = [FallbackPolicy::Reject];
    let fallbacks = fallbacks.unwrap_or(&default_fallbacks);
    let selected: Vec<&str> =
        if name == "all" { REGISTRY.iter().map(|s| s.name).collect() } else { vec![name] };
    let mut failures = 0usize;
    for spec in REGISTRY.iter().filter(|s| selected.contains(&s.name)) {
        println!("## Scenario `{}` — {}", spec.name, spec.summary);
        // Periodic images land in a per-scenario subdirectory so one
        // `scenario all` invocation keeps every scenario's `latest.ckpt`.
        let crisp_params = base.clone().with_checkpoint(CheckpointPolicy {
            dir: ckpt.dir.as_ref().map(|d| d.join(spec.name)),
            ..ckpt.clone()
        });
        let res =
            run_named(spec.name, &scenario_scale, &crisp_params).expect("registered scenario");
        if let Some(dir) = &crisp_params.run.checkpoint.dir {
            if crisp_params.run.checkpoint.every_epochs.is_some() {
                println!("   checkpoints: periodic images under {}", dir.display());
            }
        }
        let s = &res.summary;
        println!(
            "   crisp : {:>7.0} paths/epoch, score {:>9.1}, {:>8} reports / {:>9} measurements, \
             {:.2} ms/epoch",
            s.mean_index_size,
            s.mean_score,
            res.filter_stats.reports,
            s.measurements,
            s.mean_time_ms
        );
        if let Some(last) = res.outcome.per_epoch.last() {
            if last.session_connects > 0 {
                println!(
                    "   robust: {} healthy / {} dropped at end; {} connects, {} reconnects, \
                     {} ejections, {} turned away, {} degraded epochs",
                    last.sessions_healthy,
                    last.sessions_dropped,
                    last.session_connects,
                    last.session_reconnects,
                    last.session_ejections,
                    last.turned_away,
                    last.degraded_epochs
                );
            }
        }
        match &res.invariants {
            Ok(()) => println!("   invariants: ok"),
            Err(e) => {
                failures += 1;
                println!("   invariants: FAILED — {e}");
            }
        }
        if shards > 1 || engine != EngineKind::Sync {
            // The crisp run above already ran sharded/pipelined; only
            // the fresh sequential sync reference costs an extra run.
            match check_parity_against(&res, spec.name, &scenario_scale, &base) {
                Ok(()) => {
                    println!("   parity: sequential sync == {shards}-shard {engine}, bit for bit")
                }
                Err(e) => {
                    failures += 1;
                    println!("   parity: FAILED — {e}");
                }
            }
        }
        if restore_check {
            match check_restart_parity(spec.name, &scenario_scale, &base) {
                Ok(()) => println!(
                    "   restart parity: checkpoint/restore at mid-run == uninterrupted, bit for bit"
                ),
                Err(e) => {
                    failures += 1;
                    println!("   restart parity: FAILED — {e}");
                }
            }
        }
        if let Some(dir) = csv_dir {
            let path = dir.join(format!("scenario_{}.csv", spec.name));
            match std::fs::write(&path, hotpath_sim::report::epoch_metrics_csv(&res.per_epoch)) {
                Ok(()) => println!("   (per-epoch series written to {})", path.display()),
                Err(e) => {
                    failures += 1;
                    println!("   csv: FAILED — cannot write {}: {e}", path.display());
                }
            }
        }
        let cells = scenario_sigma_sweep(spec.name, &scenario_scale, &base, sigmas, fallbacks)
            .expect("registered scenario");
        println!("   uncertainty sweep (eps = {}, delta = {}):", base.eps, base.delta);
        let data: Vec<Vec<String>> = cells
            .iter()
            .map(|c| {
                vec![
                    format!("{:?}", c.fallback),
                    format!("{:.1}", c.sigma),
                    c.reports.to_string(),
                    c.dropped.to_string(),
                    format!("{:.0}", c.mean_index),
                    format!("{:.1}", c.mean_score),
                    c.invariant_failure.as_deref().unwrap_or("ok").to_string(),
                ]
            })
            .collect();
        let table = hotpath_sim::report::table(
            &["fallback", "sigma", "reports", "dropped", "paths", "score", "invariants"],
            &data,
        );
        for line in table.lines() {
            println!("   {line}");
        }
        println!();
    }
    if failures > 0 {
        eprintln!("scenario: {failures} failure(s)");
        std::process::exit(1);
    }
}

/// Base simulation params at `scale` with the CLI's execution knobs.
fn sim(
    scale: Scale,
    seed: u64,
    shards: usize,
    workers: usize,
    engine: EngineKind,
) -> SimulationParams {
    scale.base(seed).with_shards(shards).with_phase_b_workers(workers).with_engine(engine)
}

/// Figure 7 (a-c): vary N at eps = 10.
fn fig7(
    scale: Scale,
    shards: usize,
    workers: usize,
    engine: EngineKind,
    csv_dir: Option<&std::path::Path>,
) {
    println!("## Figure 7 — varying the number of objects (eps = 10 m)");
    println!("   panels: (a) index size, (b) top-10 score, (c) SinglePath ms/epoch");
    let rows = figure7(&scale.fig7_ns(), sim(scale, 2008, shards, workers, engine));
    println!("{}", format_fig7(&rows));
    if let Some(dir) = csv_dir {
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    format!("{}", r.sp_paths),
                    format!("{}", r.dp_paths),
                    format!("{}", r.sp_score),
                    format!("{}", r.dp_score),
                    format!("{}", r.sp_time_ms),
                ]
            })
            .collect();
        let csv = hotpath_sim::report::csv(
            &["n", "sp_paths", "dp_paths", "sp_score", "dp_score", "sp_time_ms"],
            &data,
        );
        let path = dir.join("fig7.csv");
        std::fs::write(&path, csv).expect("write fig7.csv");
        println!("   (series written to {})", path.display());
    }
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        println!(
            "   shape: SP/DP path ratio goes {:.2} -> {:.2}; SP time grows {:.1}x across the sweep",
            first.sp_paths / first.dp_paths.max(1.0),
            last.sp_paths / last.dp_paths.max(1.0),
            last.sp_time_ms / first.sp_time_ms.max(1e-9),
        );
    }
    println!();
}

/// Figure 8 (a-c): vary eps at the scale's fixed N.
fn fig8(
    scale: Scale,
    shards: usize,
    workers: usize,
    engine: EngineKind,
    csv_dir: Option<&std::path::Path>,
) {
    let n = scale.fig8_n();
    println!("## Figure 8 — varying the tolerance (N = {n})");
    println!("   panels: (a) index size, (b) top-10 score, (c) SinglePath ms/epoch");
    let base = SimulationParams { n, ..sim(scale, 2009, shards, workers, engine) };
    let rows = figure8(&scale.fig8_eps(), base);
    println!("{}", format_fig8(&rows));
    if let Some(dir) = csv_dir {
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.eps),
                    format!("{}", r.sp_paths),
                    format!("{}", r.dp_paths),
                    format!("{}", r.sp_score),
                    format!("{}", r.dp_score),
                    format!("{}", r.sp_time_ms),
                ]
            })
            .collect();
        let csv = hotpath_sim::report::csv(
            &["eps", "sp_paths", "dp_paths", "sp_score", "dp_score", "sp_time_ms"],
            &data,
        );
        let path = dir.join("fig8.csv");
        std::fs::write(&path, csv).expect("write fig8.csv");
        println!("   (series written to {})", path.display());
    }
    let t2 = rows.iter().find(|r| r.eps == 2.0);
    let t20 = rows.iter().find(|r| r.eps == 20.0);
    if let (Some(a), Some(b)) = (t2, t20) {
        println!(
            "   shape: processing time falls {:.1}x from eps=2 to eps=20 (paper: >3x)",
            a.sp_time_ms / b.sp_time_ms.max(1e-9)
        );
    }
    println!();
}

/// Figure 9: the discovered network map.
fn fig9(scale: Scale, shards: usize, workers: usize, engine: EngineKind) {
    println!("## Figure 9 — all motion paths with hotness > 0 (vs the hidden network)");
    let params = SimulationParams { n: scale.map_n(), ..sim(scale, 2010, shards, workers, engine) };
    let (paths, res) = figure9(params);
    let (cols, rows_) = (96, 30);
    let net = network_map(&res.network, cols, rows_);
    let disc = paths_map(res.network.bounds(), &paths, cols, rows_);
    println!("   the hidden road network:");
    print!("{}", indent(&net.render()));
    println!("   as discovered by SinglePath ({} hot paths):", paths.len());
    print!("{}", indent(&disc.render()));
    println!(
        "   ink coverage: network {:.0}%, discovered {:.0}%",
        net.coverage() * 100.0,
        disc.coverage() * 100.0
    );
    println!();
}

/// Figure 10: top-20 hottest paths in the center.
fn fig10_(scale: Scale, shards: usize, workers: usize, engine: EngineKind) {
    println!("## Figure 10 — top 20 hottest motion paths, city center");
    let params = SimulationParams { n: scale.map_n(), ..sim(scale, 2010, shards, workers, engine) };
    let (paths, center, _res) = figure10(params, 20);
    let map = paths_map(center, &paths, 72, 24);
    print!("{}", indent(&map.render()));
    println!(
        "   {} central hot paths; hotness range {:?}",
        paths.len(),
        (paths.last().map(|p| p.1).unwrap_or(0), paths.first().map(|p| p.1).unwrap_or(0),)
    );
    println!();
}

/// The in-text claims of Section 6.2.
fn claims(scale: Scale, shards: usize, workers: usize, engine: EngineKind) {
    println!("## Section 6.2 in-text claims");
    // Claim i: at the largest N, SinglePath stores ~16% more segments
    // than DP (10,896 vs 9,416 in the paper).
    let n = *scale.fig7_ns().last().expect("non-empty sweep");
    let res = run(SimulationParams { n, ..sim(scale, 2008, shards, workers, engine) });
    let sp = res.summary.mean_index_size;
    let dp = res.summary.mean_dp_index_size;
    println!(
        "   (i) N={n}: SinglePath {sp:.0} paths vs DP {dp:.0} segments ({:+.0}% — paper: +16% at N=100k)",
        100.0 * (sp - dp) / dp.max(1.0)
    );
    // Claim ii: SinglePath can beat DP on score (paper: at N=20000).
    let rows = figure7(&scale.fig7_ns(), sim(scale, 2008, shards, workers, engine));
    let wins: Vec<usize> = rows.iter().filter(|r| r.sp_score > r.dp_score).map(|r| r.n).collect();
    println!("   (ii) SinglePath score beats DP at N in {wins:?} (paper: at N=20,000)");
    // Claim iii is printed by fig8's shape line.
    println!("   (iii) see Figure 8 shape line (eps=2 -> 20 speedup; paper: >3x)");
    // Filter economy (the motivation of Section 3.2).
    println!(
        "   filter: {} of {} measurements uploaded ({:.1}% suppressed)",
        res.summary.uplink_msgs,
        res.summary.measurements,
        100.0 * (1.0 - res.summary.report_ratio)
    );
    println!();
}

/// The Section 7 feedback extension ablation.
fn hinted(scale: Scale, shards: usize, workers: usize, engine: EngineKind) {
    println!("## Section 7 extension — hinted RayTrace ablation");
    let n = scale.fig8_n();
    let base = SimulationParams { n, run_dp: false, ..sim(scale, 2011, shards, workers, engine) };
    let plain = run(base.clone());
    let hinted = run(SimulationParams { hints: true, ..base });
    println!(
        "   plain : {:>8.0} paths, score {:>9.1}, case1 reuse {:>5.1}%",
        plain.summary.mean_index_size,
        plain.summary.mean_score,
        100.0 * plain.coordinator.processing_stats().reuse_ratio()
    );
    println!(
        "   hinted: {:>8.0} paths, score {:>9.1}, case1 reuse {:>5.1}%",
        hinted.summary.mean_index_size,
        hinted.summary.mean_score,
        100.0 * hinted.coordinator.processing_stats().reuse_ratio()
    );
    println!();
}

/// Ablation of the Cases-2/3 FSA-overlap machinery (Example 2).
fn ablate(scale: Scale, shards: usize, workers: usize, engine: EngineKind) {
    use hotpath_core::strategy::OverlapPolicy;
    println!("## Ablation — Algorithm 2 overlap analysis vs naive vertices");
    let n = scale.fig8_n();
    let base = SimulationParams { n, run_dp: false, ..sim(scale, 2012, shards, workers, engine) };
    let full = run(base.clone());
    let own = run(SimulationParams { overlap: OverlapPolicy::Own, ..base });
    for (tag, res) in [("full (Alg. 2)", &full), ("own-centroid ", &own)] {
        let p = res.coordinator.processing_stats();
        println!(
            "   {tag}: {:>8.0} paths, score {:>9.1}, reuse case1 {:>4.1}% case2 {:>4.1}%",
            res.summary.mean_index_size,
            res.summary.mean_score,
            100.0 * p.case1 as f64 / (p.case1 + p.case2 + p.case3).max(1) as f64,
            100.0 * p.case2 as f64 / (p.case1 + p.case2 + p.case3).max(1) as f64,
        );
    }
    println!(
        "   overlap machinery changes the index by {:+.1}% and the score by {:+.1}%",
        100.0 * (full.summary.mean_index_size - own.summary.mean_index_size)
            / own.summary.mean_index_size.max(1.0),
        100.0 * (full.summary.mean_score - own.summary.mean_score)
            / own.summary.mean_score.max(1e-9),
    );
    println!();
}

/// Communication-economy comparison of client filters (extension).
fn filters(scale: Scale, shards: usize, workers: usize, engine: EngineKind) {
    use hotpath_sim::experiment::filter_economy;
    println!("## Filter economy — naive vs dead reckoning vs RayTrace");
    let n = scale.fig8_n();
    let e = filter_economy(SimulationParams {
        n,
        run_dp: false,
        ..sim(scale, 2013, shards, workers, engine)
    });
    let pct = |msgs: u64| 100.0 * msgs as f64 / e.naive_msgs.max(1) as f64;
    println!("   measurements        : {:>12}", e.measurements);
    println!(
        "   naive (every move)  : {:>12} msgs  {:>12} bytes  (100%)",
        e.naive_msgs, e.naive_bytes
    );
    println!(
        "   dead reckoning      : {:>12} msgs  {:>12} bytes  ({:.1}% of naive)",
        e.dead_reckoning_msgs,
        e.dead_reckoning_bytes,
        pct(e.dead_reckoning_msgs)
    );
    println!(
        "   RayTrace            : {:>12} msgs  {:>12} bytes  ({:.1}% of naive)",
        e.raytrace_msgs,
        e.raytrace_bytes,
        pct(e.raytrace_msgs)
    );
    println!("   (RayTrace additionally yields covering motion paths; DR does not)");
    println!();
}

/// Streaming-compression quality comparison (extension; cf. ref. 20).
fn compress() {
    use hotpath_sim::experiment::compression_quality;
    println!("## Synopsis quality — RayTrace chain vs DP-nopw vs DP-bopw");
    println!("   (one wavy trajectory with a hard turn; deviations in meters)");
    let mut rows = Vec::new();
    for eps in [2.0, 5.0, 10.0] {
        let r = compression_quality(400, eps);
        rows.push(vec![
            format!("{eps:.0}"),
            r.raytrace_segments.to_string(),
            format!("{:.2}", r.raytrace_deviation),
            r.nopw_segments.to_string(),
            format!("{:.2}", r.nopw_deviation),
            r.bopw_segments.to_string(),
            format!("{:.2}", r.bopw_deviation),
        ]);
    }
    println!(
        "{}",
        hotpath_sim::report::table(
            &["eps", "RT segs", "RT dev", "nopw segs", "nopw dev", "bopw segs", "bopw dev"],
            &rows
        )
    );
    println!();
}

/// The (eps, delta) noise sweep (Section 4.1 extension).
fn uncertain() {
    use hotpath_sim::experiment::uncertainty_sweep;
    println!("## Uncertainty — sensor noise vs tolerance interval and report rate");
    println!("   (eps = 10 m, delta = 0.05, straight-road movers)");
    let rows = uncertainty_sweep(&[0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 4.5], 10.0, 0.05, 2014);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.sigma),
                r.half_width.map(|w| format!("{w:.2}")).unwrap_or_else(|| "unsolvable".into()),
                format!("{:.2}", r.reports_per_mover),
                r.dropped.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        hotpath_sim::report::table(&["sigma (m)", "half-width", "reports/mover", "dropped"], &data)
    );
    println!();
}

/// Checkpoint micro-benchmark: build a coordinator holding 100k motion
/// paths, then time the section-memcpy image build, the file write, and
/// the read + restore, verifying the round trip is byte-identical and
/// consistent.
fn checkpoint_bench(shards: usize) {
    use hotpath_core::config::Config;
    use hotpath_core::coordinator::Coordinator;
    use hotpath_core::geometry::{Point, Rect};
    use hotpath_core::raytrace::ClientState;
    use hotpath_core::time::Timestamp;
    use hotpath_core::ObjectId;

    println!("## Checkpoint bench — 100k-path coordinator, {shards} shard(s)");
    let paths = 100_000usize;
    let mut c = Coordinator::new(
        Config::paper_defaults().with_window(1_000_000).with_epoch(10).with_shards(shards),
    );
    // Distinct corridors on a coarse lattice: every state mints its own
    // path (Case 3), far enough apart that FSAs never overlap.
    let states = (0..paths).map(|i| {
        let x = (i % 1_000) as f64 * 120.0;
        let y = (i / 1_000) as f64 * 120.0;
        let end = Point::new(x + 40.0, y);
        ClientState {
            object: ObjectId(i as u64),
            start: Point::new(x, y),
            ts: Timestamp(0),
            fsa: Rect::new(end - Point::new(2.0, 2.0), end + Point::new(2.0, 2.0)),
            te: Timestamp(9),
        }
    });
    c.submit_batch(states);
    let _ = c.process_epoch(Timestamp(10));
    assert!(c.hot_count() >= paths, "hot set smaller than intended");

    let t = Instant::now();
    let image = c.checkpoint();
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let bytes = image.size_bytes();
    println!(
        "   image build : {build_ms:>8.2} ms  ({bytes} bytes, {:.1} B/path)",
        bytes as f64 / paths as f64
    );

    let dir = std::env::temp_dir().join("hotpath-checkpoint-bench");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = dir.join("bench.ckpt");
    let t = Instant::now();
    image.write_to_path(&path).expect("write checkpoint");
    let write_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("   file write  : {write_ms:>8.2} ms  ({})", path.display());

    let t = Instant::now();
    let reread =
        hotpath_core::checkpoint::Checkpoint::read_from_path(&path).expect("read checkpoint back");
    let restored = Coordinator::from_checkpoint(*c.config(), &reread).expect("restore");
    let restore_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("   read+restore: {restore_ms:>8.2} ms");

    restored.check_consistency().expect("restored coordinator consistent");
    assert_eq!(
        restored.checkpoint().as_bytes(),
        image.as_bytes(),
        "re-checkpoint of the restored coordinator must be byte-identical"
    );
    let _ = std::fs::remove_file(&path);
    println!("   round trip  : byte-identical, consistency ok");
    println!();
}

/// `client_swarm`: the deterministic serving load generator. With
/// `--verify`, runs the identical schedule on both engine backends and
/// exits 1 unless the final snapshots are fingerprint-identical.
#[allow(clippy::too_many_arguments)]
fn swarm_cmd(
    scale: Scale,
    shards: usize,
    phase_b_workers: usize,
    engine: EngineKind,
    seed: Option<u64>,
    churn: Option<f64>,
    fault_seed: Option<u64>,
    verify: bool,
) {
    let mut params = match scale {
        Scale::Quick => SwarmParams::quick(),
        Scale::Mid => SwarmParams::quick().with_writers(32).with_ticks(300).with_churn(0.1),
        Scale::Paper => SwarmParams::full(),
    };
    let mut run = RunOptions::default()
        .with_shards(shards)
        .with_phase_b_workers(phase_b_workers)
        .with_engine(engine);
    if let Some(seed) = fault_seed {
        run = run.with_fault_seed(seed);
    }
    params = params.with_run(run);
    if let Some(seed) = seed {
        params = params.with_seed(seed);
    }
    if let Some(churn) = churn {
        params = params.with_churn(churn);
    }
    println!(
        "## client_swarm — {} writers, {} readers, {} ticks, seed {:#x}, churn {:.0}%",
        params.writers,
        params.readers,
        params.ticks,
        params.seed,
        params.churn * 100.0
    );
    if verify {
        match verify_swarm(&params) {
            Ok((sync, pipelined)) => {
                print_swarm_report(&sync);
                print_swarm_report(&pipelined);
                println!("   parity: both engines fingerprint-identical under the same schedule");
            }
            Err(e) => {
                eprintln!("swarm: {e}");
                std::process::exit(1);
            }
        }
    } else {
        print_swarm_report(&run_swarm(&params));
    }
    println!();
}

fn print_swarm_report(r: &SwarmReport) {
    println!(
        "   {:>9}: {} submitted (+{} churned out), {} epochs, epoch {} final, {} hot, \
         {} lock-free reads (max epoch seen {}), schedule {:#018x}, fingerprint {:#018x}",
        r.engine.to_string(),
        r.submitted,
        r.suppressed,
        r.epochs,
        r.final_epoch,
        r.hot_count,
        r.reads,
        r.max_epoch_seen,
        r.schedule_hash,
        r.fingerprint
    );
}

/// An offline smoke of the full out-of-process stack: bind a `hotpathd`
/// to a unix socket and drive a scripted wire client through
/// submit-batch / advance / query for `ticks` granules.
fn serve_cmd(shards: usize, engine: EngineKind, socket: Option<std::path::PathBuf>, ticks: u64) {
    use hotpath_core::config::Config;
    use hotpath_core::coordinator::Coordinator;
    use hotpath_core::geometry::{Point, Rect};
    use hotpath_core::raytrace::ClientState;
    use hotpath_core::time::Timestamp;
    use hotpath_core::ObjectId;
    use hotpath_serve::server::Hotpathd;
    use hotpath_serve::wire::{serve_unix, UnixClient};

    let path = socket.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("hotpathd-serve-{}.sock", std::process::id()))
    });
    let config = Config::paper_defaults().with_epoch(10).with_window(100).with_shards(shards);
    let epoch = config.epochs.lambda;
    let handle = Hotpathd::spawn(engine.build(Coordinator::new(config)));
    let server = serve_unix(&handle, &path)
        .unwrap_or_else(|e| usage(&format!("cannot bind {}: {e}", path.display())));
    println!("## hotpathd — serving on {} ({engine}, {shards} shard(s))", path.display());

    let mut client = UnixClient::connect(&path).expect("connect to own socket");
    // Four writers on a shared corridor pair; one traversal each per tick.
    for t in 1..=ticks {
        let batch: Vec<ClientState> = (0..4u64)
            .map(|w| {
                let y = (w % 2) as f64 * 300.0;
                let end = Point::new(50.0, y);
                ClientState {
                    object: ObjectId(w),
                    start: Point::new(0.0, y),
                    ts: Timestamp(t.saturating_sub(8)),
                    fsa: Rect::new(
                        Point::new(end.x - 2.0, end.y - 2.0),
                        Point::new(end.x + 2.0, end.y + 2.0),
                    ),
                    te: Timestamp(t),
                }
            })
            .collect();
        client.submit_batch(&batch).expect("submit over the wire");
        client.advance(Timestamp(t)).expect("advance over the wire");
    }
    // Open loop: poll until the last boundary's publish lands.
    let want = ticks / epoch;
    let snap = loop {
        let snap = client.query().expect("query over the wire");
        if snap.epoch >= want {
            break snap;
        }
        std::thread::yield_now();
    };
    println!(
        "   wire round trip: epoch {} at t={}, {} top path(s), hottest {} crossings",
        snap.epoch,
        snap.timestamp.0,
        snap.top.len(),
        snap.top.first().map(|e| e.hotness).unwrap_or(0)
    );
    server.stop();
    let stats = handle.stats_handle();
    let final_snap = handle.shutdown();
    let stats = stats.view();
    println!(
        "   server: {} submitted, {} epochs, final epoch {}, {} hot",
        stats.submitted, stats.epochs, final_snap.epoch, final_snap.hot_count
    );
    println!();
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("   |{l}\n")).collect()
}
