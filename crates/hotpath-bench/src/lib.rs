//! # hotpath-bench
//!
//! Shared workload builders for the Criterion benches and the
//! `experiments` binary that regenerates every figure of the paper's
//! evaluation (Figures 7a-c, 8a-c, 9, 10 and the in-text claims).
//!
//! Scale levels:
//! * `paper` — the exact parameters of Section 6.1 (N up to 100 000 on
//!   the 1125-node Athens-like network, 250 timestamps);
//! * `mid` — the same network at reduced N for fast runs;
//! * `quick` — a tiny network for CI and Criterion benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gate;

use hotpath_netsim::network::NetworkParams;
use hotpath_sim::simulation::SimulationParams;

/// Experiment scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Paper-exact parameters (slow at N = 100k).
    Paper,
    /// Athens network, reduced populations.
    Mid,
    /// Tiny network, small populations (CI-friendly).
    Quick,
}

impl std::str::FromStr for Scale {
    type Err = hotpath_core::config::ParseError;

    fn from_str(s: &str) -> Result<Scale, Self::Err> {
        match s {
            "paper" => Ok(Scale::Paper),
            "mid" => Ok(Scale::Mid),
            "quick" => Ok(Scale::Quick),
            other => {
                Err(hotpath_core::config::ParseError::new("scale", other, "paper | mid | quick"))
            }
        }
    }
}

impl Scale {
    /// Parses a CLI tag. Thin shim over the [`FromStr`](std::str::FromStr)
    /// impl, kept for callers that only care about success.
    pub fn parse(s: &str) -> Option<Scale> {
        s.parse().ok()
    }

    /// Base simulation parameters at this scale (N filled per sweep).
    pub fn base(self, seed: u64) -> SimulationParams {
        match self {
            Scale::Paper => SimulationParams::paper_defaults(0, seed),
            Scale::Mid => {
                SimulationParams { duration: 150, ..SimulationParams::paper_defaults(0, seed) }
            }
            Scale::Quick => SimulationParams {
                network: NetworkParams::tiny(seed),
                duration: 100,
                window: 50,
                // Higher agility so objects cross several roads even in
                // the short horizon (keeps the DP competitor non-trivial).
                agility: 0.4,
                ..SimulationParams::paper_defaults(0, seed)
            },
        }
    }

    /// The Figure 7 object-count sweep at this scale.
    pub fn fig7_ns(self) -> Vec<usize> {
        match self {
            Scale::Paper => vec![10_000, 20_000, 50_000, 100_000],
            Scale::Mid => vec![2_000, 5_000, 10_000, 20_000],
            Scale::Quick => vec![100, 200, 500, 1_000],
        }
    }

    /// The Figure 8 tolerance sweep (same at all scales: Table 2).
    pub fn fig8_eps(self) -> Vec<f64> {
        vec![1.0, 2.0, 10.0, 20.0]
    }

    /// The fixed N of the Figure 8 sweep at this scale.
    pub fn fig8_n(self) -> usize {
        match self {
            Scale::Paper => 20_000,
            Scale::Mid => 5_000,
            Scale::Quick => 500,
        }
    }

    /// Default N for the map figures (9, 10).
    pub fn map_n(self) -> usize {
        match self {
            Scale::Paper => 20_000,
            Scale::Mid => 10_000,
            Scale::Quick => 800,
        }
    }

    /// Workload scale for the scenario subsystem (`experiments scenario`).
    pub fn scenario_params(self, seed: u64) -> hotpath_netsim::scenario::ScenarioParams {
        use hotpath_netsim::scenario::ScenarioParams;
        match self {
            Scale::Paper => {
                ScenarioParams { n: 20_000, seed, duration: 250, network: NetworkParams::athens() }
            }
            Scale::Mid => {
                ScenarioParams { n: 5_000, seed, duration: 150, network: NetworkParams::athens() }
            }
            Scale::Quick => ScenarioParams { n: 300, ..ScenarioParams::quick(seed) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("mid"), Some(Scale::Mid));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("nope"), None);
        let err = "nope".parse::<Scale>().unwrap_err();
        assert_eq!(err.to_string(), "invalid scale \"nope\": expected paper | mid | quick");
    }

    #[test]
    fn paper_scale_matches_table2() {
        let base = Scale::Paper.base(1);
        assert_eq!(base.eps, 10.0);
        assert_eq!(base.window, 100);
        assert_eq!(base.epoch, 10);
        assert_eq!(base.duration, 250);
        assert_eq!(Scale::Paper.fig7_ns(), vec![10_000, 20_000, 50_000, 100_000]);
        assert_eq!(Scale::Paper.fig8_n(), 20_000);
        assert_eq!(Scale::Paper.fig8_eps(), vec![1.0, 2.0, 10.0, 20.0]);
    }

    #[test]
    fn quick_scale_is_small() {
        assert!(Scale::Quick.fig7_ns().iter().max().unwrap() <= &1_000);
    }

    #[test]
    fn scenario_params_scale_with_the_level() {
        let quick = Scale::Quick.scenario_params(7);
        let mid = Scale::Mid.scenario_params(7);
        let paper = Scale::Paper.scenario_params(7);
        assert!(quick.n < mid.n && mid.n < paper.n);
        assert_eq!(quick.seed, 7);
        assert_eq!(paper.duration, 250);
    }
}
