//! Bench-baseline capture and regression gating.
//!
//! The vendored criterion harness appends one JSON line per benchmark
//! (`{"id":"...","median_ns":...}`) to the file named by the
//! `CRITERION_CAPTURE` environment variable. This module turns those
//! captures into checked-in `BENCH_<name>.json` snapshots and compares
//! fresh captures against them with a relative tolerance, so perf PRs
//! can assert no-regression in CI (`bench_gate check --tolerance T`).
//!
//! No serde in the offline build environment, so the snapshot format is
//! a deliberately tiny JSON dialect written and parsed here: objects
//! with string `"id"` and numeric `"median_ns"` fields. The parser is
//! shared by the JSONL capture stream and the pretty snapshot files.

use std::fmt::Write as _;

/// One benchmark's captured median.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Full criterion id, `group/function/param`.
    pub id: String,
    /// Median wall time per iteration in nanoseconds.
    pub median_ns: f64,
}

/// A named set of benchmark medians (one `cargo bench` target).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// The bench target name (e.g. `micro_raytrace`).
    pub bench: String,
    /// Captured entries, in capture order.
    pub entries: Vec<BenchEntry>,
}

impl Snapshot {
    /// Builds a snapshot from the raw `CRITERION_CAPTURE` stream of one
    /// bench target. Duplicate ids keep the *last* capture (re-runs
    /// within a process supersede earlier ones).
    pub fn from_capture(bench: &str, jsonl: &str) -> Snapshot {
        let mut entries: Vec<BenchEntry> = Vec::new();
        for e in parse_entries(jsonl) {
            if let Some(slot) = entries.iter_mut().find(|x| x.id == e.id) {
                *slot = e;
            } else {
                entries.push(e);
            }
        }
        Snapshot { bench: bench.to_string(), entries }
    }

    /// Renders the checked-in snapshot file.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(out, "  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            // Same sanitization as the capture hook: the parser has no
            // escape support, so ids must stay quote- and
            // backslash-free for the file to round-trip.
            let id: String =
                e.id.chars().map(|c| if c == '"' || c == '\\' { '_' } else { c }).collect();
            let _ =
                writeln!(out, "    {{\"id\": \"{id}\", \"median_ns\": {}}}{comma}", e.median_ns);
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a snapshot file produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let bench = extract_string(text, "\"bench\"")
            .ok_or_else(|| "snapshot missing \"bench\" field".to_string())?;
        let entries = parse_entries(text);
        if entries.is_empty() {
            return Err(format!("snapshot for '{bench}' has no entries"));
        }
        Ok(Snapshot { bench, entries })
    }

    /// Looks up an entry by id.
    pub fn get(&self, id: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.id == id)
    }
}

/// Scans `text` for every `{"id": "...", "median_ns": ...}` object.
fn parse_entries(text: &str) -> Vec<BenchEntry> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(idpos) = rest.find("\"id\"") {
        let tail = &rest[idpos..];
        let Some(id) = extract_string(tail, "\"id\"") else { break };
        // Scope the median search to this object: an entry missing its
        // median_ns must be dropped, not paired with the next entry's.
        let body = &tail["\"id\"".len()..];
        let scope = &body[..body.find("\"id\"").unwrap_or(body.len())];
        let median = extract_number(scope, "\"median_ns\"");
        // Advance past this id either way so a malformed object cannot
        // loop forever.
        rest = body;
        if let Some(median_ns) = median {
            out.push(BenchEntry { id, median_ns });
        }
    }
    out
}

/// Extracts the string value following `key` (`"key" : "value"`).
fn extract_string(text: &str, key: &str) -> Option<String> {
    let at = text.find(key)? + key.len();
    let tail = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let tail = tail.strip_prefix('"')?;
    let end = tail.find('"')?;
    Some(tail[..end].to_string())
}

/// Extracts the numeric value following `key` (`"key" : 123.4`).
fn extract_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let tail = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = tail
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The verdict of one baseline-vs-current comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Within tolerance (ratio of current to baseline).
    Ok(f64),
    /// Slower than `baseline * (1 + tolerance)`.
    Regressed(f64),
    /// Present in the baseline but not re-measured.
    Missing,
    /// Measured now but absent from the baseline (informational).
    New,
}

/// Compares `current` against `baseline`: every baseline entry must be
/// re-measured and stay within `baseline * (1 + tolerance)`. Returns
/// `(id, verdict)` rows in baseline order, then `New` rows.
pub fn compare(baseline: &Snapshot, current: &Snapshot, tolerance: f64) -> Vec<(String, Verdict)> {
    let mut rows = Vec::new();
    for b in &baseline.entries {
        let verdict = match current.get(&b.id) {
            None => Verdict::Missing,
            Some(c) => {
                let ratio = c.median_ns / b.median_ns.max(f64::MIN_POSITIVE);
                if ratio > 1.0 + tolerance {
                    Verdict::Regressed(ratio)
                } else {
                    Verdict::Ok(ratio)
                }
            }
        };
        rows.push((b.id.clone(), verdict));
    }
    for c in &current.entries {
        if baseline.get(&c.id).is_none() {
            rows.push((c.id.clone(), Verdict::New));
        }
    }
    rows
}

/// True when any row fails the gate (regressed or missing).
pub fn has_failures(rows: &[(String, Verdict)]) -> bool {
    rows.iter().any(|(_, v)| matches!(v, Verdict::Regressed(_) | Verdict::Missing))
}

/// Human-scale wall time: `12.3ns`, `4.56us`, `7.89ms`, `1.23s`.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1}ns")
    } else if ns < 1e6 {
        format!("{:.2}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Renders the comparison as a margin table: baseline vs measured vs
/// the tolerance budget, with per-benchmark headroom (how far the
/// measurement sits from tripping the gate — 100% = at baseline or
/// better than it, 0% = at the limit, negative = regressed). CI logs
/// show at a glance which gated benches are drifting toward the cliff.
pub fn margin_table(
    rows: &[(String, Verdict)],
    baseline: &Snapshot,
    current: &Snapshot,
    tolerance: f64,
) -> String {
    let limit = 1.0 + tolerance;
    let mut table: Vec<[String; 6]> = vec![[
        "status".into(),
        "benchmark".into(),
        "baseline".into(),
        "measured".into(),
        "ratio".into(),
        "headroom".into(),
    ]];
    for (id, verdict) in rows {
        let base = baseline.get(id).map(|e| e.median_ns);
        let cur = current.get(id).map(|e| e.median_ns);
        let (status, ratio) = match verdict {
            Verdict::Ok(r) => ("ok", Some(*r)),
            Verdict::Regressed(r) => ("REGRESSED", Some(*r)),
            Verdict::Missing => ("MISSING", None),
            Verdict::New => ("new", None),
        };
        // At tolerance 0 the budget is empty: at-or-below baseline is
        // full headroom, anything slower has none (avoids 0/0).
        let headroom = ratio.map(|r| {
            if tolerance > 0.0 {
                100.0 * (limit - r.max(1.0)) / (limit - 1.0)
            } else if r <= 1.0 {
                100.0
            } else {
                0.0
            }
        });
        let dash = || "-".to_string();
        table.push([
            status.to_string(),
            id.clone(),
            base.map(format_ns).unwrap_or_else(dash),
            cur.map(format_ns).unwrap_or_else(dash),
            ratio.map(|r| format!("{r:.2}x")).unwrap_or_else(dash),
            headroom.map(|h| format!("{h:.0}%")).unwrap_or_else(dash),
        ]);
    }
    let mut widths = [0usize; 6];
    for row in &table {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &table {
        let _ = write!(out, "  ");
        for (i, (cell, w)) in row.iter().zip(widths).enumerate() {
            // Left-align the name columns, right-align the numbers.
            if i <= 1 {
                let _ = write!(out, "{cell:<w$}  ");
            } else {
                let _ = write!(out, "{cell:>w$}  ");
            }
        }
        let trimmed = out.trim_end().len();
        out.truncate(trimmed);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(bench: &str, entries: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            bench: bench.to_string(),
            entries: entries
                .iter()
                .map(|&(id, m)| BenchEntry { id: id.to_string(), median_ns: m })
                .collect(),
        }
    }

    #[test]
    fn capture_round_trips_through_snapshot_json() {
        let jsonl = "{\"id\":\"g/f/1\",\"median_ns\":12}\n{\"id\":\"g/f/2\",\"median_ns\":34.5}\n";
        let s = Snapshot::from_capture("micro", jsonl);
        assert_eq!(s.entries.len(), 2);
        let parsed = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.get("g/f/2").unwrap().median_ns, 34.5);
    }

    #[test]
    fn duplicate_capture_ids_keep_the_last() {
        let jsonl = "{\"id\":\"a\",\"median_ns\":10}\n{\"id\":\"a\",\"median_ns\":20}\n";
        let s = Snapshot::from_capture("b", jsonl);
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.entries[0].median_ns, 20.0);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let jsonl = "garbage\n{\"id\":\"ok\",\"median_ns\":5}\n{\"id\":\"broken\"}\n";
        let s = Snapshot::from_capture("b", jsonl);
        let ids: Vec<&str> = s.entries.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, ["ok"]);
    }

    #[test]
    fn entry_without_median_cannot_steal_the_next_entrys_value() {
        let jsonl = "{\"id\":\"broken\"}\n{\"id\":\"ok\",\"median_ns\":5}\n";
        let s = Snapshot::from_capture("b", jsonl);
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.entries[0].id, "ok");
        assert_eq!(s.entries[0].median_ns, 5.0);
    }

    #[test]
    fn from_json_rejects_empty_snapshots() {
        assert!(Snapshot::from_json("{\"bench\": \"x\", \"entries\": []}").is_err());
        assert!(Snapshot::from_json("not json at all").is_err());
    }

    #[test]
    fn compare_flags_regressions_within_tolerance() {
        let base = snap("b", &[("fast", 100.0), ("slow", 1000.0)]);
        // fast regressed 3x; slow improved.
        let cur = snap("b", &[("fast", 300.0), ("slow", 500.0)]);
        let rows = compare(&base, &cur, 0.5);
        assert_eq!(rows[0], ("fast".into(), Verdict::Regressed(3.0)));
        assert!(matches!(rows[1].1, Verdict::Ok(r) if (r - 0.5).abs() < 1e-12));
        assert!(has_failures(&rows));
        // A generous tolerance passes everything.
        assert!(!has_failures(&compare(&base, &cur, 2.5)));
    }

    #[test]
    fn margin_table_shows_headroom_per_bench() {
        let base = snap("b", &[("fast", 100.0), ("slow", 2_000_000.0), ("gone", 10.0)]);
        let cur = snap("b", &[("fast", 150.0), ("slow", 1_000_000.0), ("fresh", 42.0)]);
        let rows = compare(&base, &cur, 1.0);
        let table = margin_table(&rows, &base, &cur, 1.0);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 1 + rows.len(), "header plus one line per row");
        assert!(lines[0].contains("headroom"));
        // fast: ratio 1.50x of a 2.00x limit -> 50% headroom left.
        let fast = lines.iter().find(|l| l.contains("fast")).unwrap();
        assert!(fast.contains("1.50x") && fast.contains("50%"), "{fast}");
        assert!(fast.contains("100.0ns") && fast.contains("150.0ns"));
        // slow improved: full headroom, human-scale units.
        let slow = lines.iter().find(|l| l.contains("slow")).unwrap();
        assert!(slow.contains("100%") && slow.contains("2.00ms") && slow.contains("1.00ms"));
        // Missing and new rows render with dashes, not numbers.
        let gone = lines.iter().find(|l| l.contains("gone")).unwrap();
        assert!(gone.contains("MISSING") && gone.contains('-'));
        let fresh = lines.iter().find(|l| l.contains("fresh")).unwrap();
        assert!(fresh.contains("new"));
    }

    #[test]
    fn margin_table_handles_zero_tolerance() {
        let base = snap("b", &[("same", 100.0), ("worse", 100.0)]);
        let cur = snap("b", &[("same", 100.0), ("worse", 140.0)]);
        let rows = compare(&base, &cur, 0.0);
        let table = margin_table(&rows, &base, &cur, 0.0);
        assert!(!table.contains("NaN") && !table.contains("inf"), "{table}");
        let same = table.lines().find(|l| l.contains("same")).unwrap();
        assert!(same.contains("100%"), "{same}");
        let worse = table.lines().find(|l| l.contains("worse")).unwrap();
        assert!(worse.contains("0%"), "{worse}");
    }

    #[test]
    fn margin_table_flags_regressions_with_negative_headroom() {
        let base = snap("b", &[("hot", 100.0)]);
        let cur = snap("b", &[("hot", 250.0)]);
        let rows = compare(&base, &cur, 0.5);
        let table = margin_table(&rows, &base, &cur, 0.5);
        let hot = table.lines().find(|l| l.contains("hot")).unwrap();
        assert!(hot.contains("REGRESSED") && hot.contains("-200%"), "{hot}");
    }

    #[test]
    fn compare_reports_missing_and_new() {
        let base = snap("b", &[("gone", 10.0)]);
        let cur = snap("b", &[("fresh", 10.0)]);
        let rows = compare(&base, &cur, 1.0);
        assert_eq!(rows[0], ("gone".into(), Verdict::Missing));
        assert_eq!(rows[1], ("fresh".into(), Verdict::New));
        assert!(has_failures(&rows));
        // New-only rows are not failures.
        assert!(!has_failures(&compare(&snap("b", &[]), &cur, 1.0)));
    }
}
